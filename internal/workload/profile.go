// Package workload generates synthetic memory-access traces that stand
// in for the paper's SPEC CPU 2006/2017, graph500, and DBx1000(ycsb)
// traces. Each named profile reproduces the properties SIPT is
// sensitive to: footprint, allocation structure (few large THP-eligible
// regions vs. many small chunks with independent VA->PA deltas), access
// locality (hot-set size, sequential vs. random streams), memory
// intensity, load-use dependence distances, and mapping churn.
//
// The profiles are calibrated to the paper's qualitative per-app
// results, not to the original binaries: e.g. libquantum and GemsFDTD
// are huge-page-dominated streamers; calculix, gromacs, cactusADM,
// deepsjeng_17, graph500, ycsb, and xalancbmk_17 are the seven apps
// whose naive speculation collapses; gcc and xz_17 have poor VA->PA
// locality but recover with the IDB.
package workload

import "fmt"

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name string

	// FootprintMiB is the total data footprint. The paper runs >4 GiB
	// apps; footprints here are scaled down (DESIGN.md "Known
	// deviations") while keeping cache-relative pressure.
	FootprintMiB float64

	// BigRegionFrac is the fraction of the footprint allocated as a few
	// large, THP-eligible regions (pre-touched in order, so buddy
	// contiguity gives them one constant VA->PA delta; with THP on they
	// become huge pages). The remainder is allocated as many small
	// chunks, each with an independent delta.
	BigRegionFrac float64

	// BigColdFrac is the probability that a cold (non-hot-set) access
	// targets the big region rather than a small chunk.
	BigColdFrac float64

	// SmallChunkPages bounds the size, in 4 KiB pages, of each small
	// allocation (min, max).
	SmallChunkPages [2]int

	// PreTouch faults small chunks in allocation order (array-style
	// initialisation -> contiguous deltas within a chunk). When false,
	// pages fault on first access in access order (pointer-style).
	PreTouch bool

	// HotKiB is the size of the hot working set; its relation to the
	// 16-128 KiB L1 sweep drives the Fig. 2/3 capacity sensitivity.
	HotKiB int

	// HotFrac is the fraction of accesses that hit the hot set.
	HotFrac float64

	// SeqFrac is the fraction of accesses issued by sequential streams
	// (the rest are random within their target region). Sequential
	// streams change page rarely, which is what lets the IDB learn.
	SeqFrac float64

	// MemRatio is the fraction of dynamic instructions that are memory
	// operations; it sets the mean non-memory gap between accesses.
	MemRatio float64

	// StoreRatio is the fraction of memory operations that are stores.
	StoreRatio float64

	// ChaseFrac is the fraction of loads with a short (1-3 instruction)
	// load-use distance (pointer chasing); the rest use 5-16. Short
	// distances make IPC sensitive to L1 latency.
	ChaseFrac float64

	// ChurnEvery, when nonzero, remaps one small chunk every N accesses
	// (munmap + fresh mmap), modelling allocator churn in long-running
	// data-structure-heavy apps. Churn scatters deltas over time.
	ChurnEvery int

	// Streams is the number of concurrent access streams; each stream
	// has a distinct PC, so it also sets predictor-table pressure.
	Streams int
}

// Validate reports a descriptive error for out-of-range parameters.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.FootprintMiB <= 0:
		return fmt.Errorf("workload %s: FootprintMiB = %v", p.Name, p.FootprintMiB)
	case p.BigRegionFrac < 0 || p.BigRegionFrac > 1:
		return fmt.Errorf("workload %s: BigRegionFrac = %v", p.Name, p.BigRegionFrac)
	case p.BigColdFrac < 0 || p.BigColdFrac > 1:
		return fmt.Errorf("workload %s: BigColdFrac = %v", p.Name, p.BigColdFrac)
	case p.HotKiB <= 0:
		return fmt.Errorf("workload %s: HotKiB = %d", p.Name, p.HotKiB)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("workload %s: HotFrac = %v", p.Name, p.HotFrac)
	case p.SeqFrac < 0 || p.SeqFrac > 1:
		return fmt.Errorf("workload %s: SeqFrac = %v", p.Name, p.SeqFrac)
	case p.MemRatio <= 0 || p.MemRatio > 1:
		return fmt.Errorf("workload %s: MemRatio = %v", p.Name, p.MemRatio)
	case p.StoreRatio < 0 || p.StoreRatio > 1:
		return fmt.Errorf("workload %s: StoreRatio = %v", p.Name, p.StoreRatio)
	case p.ChaseFrac < 0 || p.ChaseFrac > 1:
		return fmt.Errorf("workload %s: ChaseFrac = %v", p.Name, p.ChaseFrac)
	case p.Streams <= 0:
		return fmt.Errorf("workload %s: Streams = %d", p.Name, p.Streams)
	case p.BigRegionFrac < 1 && (p.SmallChunkPages[0] <= 0 || p.SmallChunkPages[1] < p.SmallChunkPages[0]):
		return fmt.Errorf("workload %s: SmallChunkPages = %v", p.Name, p.SmallChunkPages)
	}
	return nil
}

// profiles holds every named workload. Apps marked [7] are the seven
// low-naive-speculation apps from Fig. 5.
var profiles = map[string]Profile{
	// ---- SPEC CPU 2006 / 2017 apps shown individually in the figures ----
	"sjeng": {
		Name: "sjeng", FootprintMiB: 8, BigRegionFrac: 0.9, BigColdFrac: 0.9,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 36, HotFrac: 0.55, SeqFrac: 0.30,
		MemRatio: 0.32, StoreRatio: 0.25, ChaseFrac: 0.25, Streams: 20,
	},
	"deepsjeng_17": { // [7] incrementally-grown hash tables, random probes
		Name: "deepsjeng_17", FootprintMiB: 12, BigRegionFrac: 0,
		SmallChunkPages: [2]int{4, 16}, PreTouch: false,
		HotKiB: 36, HotFrac: 0.50, SeqFrac: 0.25,
		MemRatio: 0.33, StoreRatio: 0.25, ChaseFrac: 0.30, Streams: 24,
	},
	"mcf": {
		Name: "mcf", FootprintMiB: 48, BigRegionFrac: 0.95, BigColdFrac: 0.95,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 96, HotFrac: 0.35, SeqFrac: 0.20,
		MemRatio: 0.42, StoreRatio: 0.18, ChaseFrac: 0.60, Streams: 16,
	},
	"mcf_17": {
		Name: "mcf_17", FootprintMiB: 56, BigRegionFrac: 0.93, BigColdFrac: 0.93,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 112, HotFrac: 0.35, SeqFrac: 0.22,
		MemRatio: 0.42, StoreRatio: 0.18, ChaseFrac: 0.58, Streams: 16,
	},
	"h264ref": { // latency-sensitive, good speculation
		Name: "h264ref", FootprintMiB: 6, BigRegionFrac: 0.8, BigColdFrac: 0.8,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 24, HotFrac: 0.75, SeqFrac: 0.60,
		MemRatio: 0.38, StoreRatio: 0.30, ChaseFrac: 0.45, Streams: 24,
	},
	"x264_17": {
		Name: "x264_17", FootprintMiB: 8, BigRegionFrac: 0.8, BigColdFrac: 0.8,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 28, HotFrac: 0.70, SeqFrac: 0.60,
		MemRatio: 0.38, StoreRatio: 0.30, ChaseFrac: 0.42, Streams: 24,
	},
	"gcc": { // obstack-style small allocations; IDB-friendly sequential use
		Name: "gcc", FootprintMiB: 10, BigRegionFrac: 0.05, BigColdFrac: 0.05,
		SmallChunkPages: [2]int{2, 8}, PreTouch: false,
		HotKiB: 36, HotFrac: 0.50, SeqFrac: 0.70,
		MemRatio: 0.30, StoreRatio: 0.28, ChaseFrac: 0.30,
		ChurnEvery: 200000, Streams: 28,
	},
	"gobmk": {
		Name: "gobmk", FootprintMiB: 6, BigRegionFrac: 0.5, BigColdFrac: 0.5,
		SmallChunkPages: [2]int{1, 6}, PreTouch: true,
		HotKiB: 44, HotFrac: 0.60, SeqFrac: 0.40,
		MemRatio: 0.30, StoreRatio: 0.22, ChaseFrac: 0.35, Streams: 24,
	},
	"omnetpp": { // event-heap pointer chasing, allocator churn
		Name: "omnetpp", FootprintMiB: 24, BigRegionFrac: 0.2, BigColdFrac: 0.2,
		SmallChunkPages: [2]int{1, 4}, PreTouch: false,
		HotKiB: 40, HotFrac: 0.45, SeqFrac: 0.30,
		MemRatio: 0.34, StoreRatio: 0.26, ChaseFrac: 0.50,
		ChurnEvery: 150000, Streams: 24,
	},
	"hmmer": {
		Name: "hmmer", FootprintMiB: 4, BigRegionFrac: 0.8, BigColdFrac: 0.85,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 24, HotFrac: 0.80, SeqFrac: 0.70,
		MemRatio: 0.45, StoreRatio: 0.25, ChaseFrac: 0.35, Streams: 16,
	},
	"perlbench": { // arena allocator: large shared arenas + small spill
		Name: "perlbench", FootprintMiB: 12, BigRegionFrac: 0.7, BigColdFrac: 0.7,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 36, HotFrac: 0.60, SeqFrac: 0.50,
		MemRatio: 0.36, StoreRatio: 0.30, ChaseFrac: 0.40, Streams: 28,
	},
	"bzip2": {
		Name: "bzip2", FootprintMiB: 10, BigRegionFrac: 0.9, BigColdFrac: 0.9,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 48, HotFrac: 0.50, SeqFrac: 0.60,
		MemRatio: 0.35, StoreRatio: 0.28, ChaseFrac: 0.30, Streams: 16,
	},
	"libquantum": { // huge-page-dominated streamer
		Name: "libquantum", FootprintMiB: 32, BigRegionFrac: 0.98, BigColdFrac: 1.0,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 18, HotFrac: 0.20, SeqFrac: 0.95,
		MemRatio: 0.45, StoreRatio: 0.25, ChaseFrac: 0.10, Streams: 8,
	},
	"bwaves": {
		Name: "bwaves", FootprintMiB: 40, BigRegionFrac: 0.95, BigColdFrac: 0.97,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 24, HotFrac: 0.35, SeqFrac: 0.90,
		MemRatio: 0.40, StoreRatio: 0.25, ChaseFrac: 0.15, Streams: 12,
	},
	"cactusADM": { // [7] per-grid-variable small arrays; tiny hot set
		Name: "cactusADM", FootprintMiB: 24, BigRegionFrac: 0,
		SmallChunkPages: [2]int{8, 32}, PreTouch: true,
		HotKiB: 10, HotFrac: 0.70, SeqFrac: 0.80,
		MemRatio: 0.40, StoreRatio: 0.30, ChaseFrac: 0.50, Streams: 20,
	},
	"calculix": { // [7] small matrices, latency-sensitive
		Name: "calculix", FootprintMiB: 8, BigRegionFrac: 0,
		SmallChunkPages: [2]int{2, 12}, PreTouch: true,
		HotKiB: 12, HotFrac: 0.70, SeqFrac: 0.85,
		MemRatio: 0.38, StoreRatio: 0.26, ChaseFrac: 0.50, Streams: 20,
	},
	"gamess": {
		Name: "gamess", FootprintMiB: 6, BigRegionFrac: 0.6, BigColdFrac: 0.6,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 28, HotFrac: 0.70, SeqFrac: 0.60,
		MemRatio: 0.35, StoreRatio: 0.24, ChaseFrac: 0.35, Streams: 20,
	},
	"GemsFDTD": { // huge-page-dominated streamer
		Name: "GemsFDTD", FootprintMiB: 48, BigRegionFrac: 0.97, BigColdFrac: 1.0,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 22, HotFrac: 0.25, SeqFrac: 0.92,
		MemRatio: 0.42, StoreRatio: 0.28, ChaseFrac: 0.12, Streams: 10,
	},
	"povray": {
		Name: "povray", FootprintMiB: 6, BigRegionFrac: 0.4, BigColdFrac: 0.4,
		SmallChunkPages: [2]int{1, 4}, PreTouch: false,
		HotKiB: 26, HotFrac: 0.75, SeqFrac: 0.40,
		MemRatio: 0.33, StoreRatio: 0.22, ChaseFrac: 0.40, Streams: 24,
	},
	"gromacs": { // [7] per-molecule small arrays
		Name: "gromacs", FootprintMiB: 8, BigRegionFrac: 0,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 20, HotFrac: 0.70, SeqFrac: 0.75,
		MemRatio: 0.37, StoreRatio: 0.26, ChaseFrac: 0.45, Streams: 20,
	},
	"graph500": { // [7] big-data BFS: edge scans + random vertex probes
		Name: "graph500", FootprintMiB: 64, BigRegionFrac: 0.3, BigColdFrac: 0.5,
		SmallChunkPages: [2]int{4, 16}, PreTouch: false,
		HotKiB: 20, HotFrac: 0.25, SeqFrac: 0.35,
		MemRatio: 0.45, StoreRatio: 0.15, ChaseFrac: 0.65,
		ChurnEvery: 100000, Streams: 16,
	},
	"ycsb": { // [7] key-value store: hash probes + record copies, churn
		Name: "ycsb", FootprintMiB: 64, BigRegionFrac: 0.2, BigColdFrac: 0.3,
		SmallChunkPages: [2]int{1, 8}, PreTouch: false,
		HotKiB: 24, HotFrac: 0.30, SeqFrac: 0.30,
		MemRatio: 0.40, StoreRatio: 0.30, ChaseFrac: 0.55,
		ChurnEvery: 80000, Streams: 20,
	},
	"xalancbmk_17": { // [7] DOM node soup; capacity-hungry
		Name: "xalancbmk_17", FootprintMiB: 20, BigRegionFrac: 0.1, BigColdFrac: 0.1,
		SmallChunkPages: [2]int{1, 4}, PreTouch: false,
		HotKiB: 56, HotFrac: 0.60, SeqFrac: 0.45,
		MemRatio: 0.34, StoreRatio: 0.24, ChaseFrac: 0.40, Streams: 28,
	},
	"leela_17": {
		Name: "leela_17", FootprintMiB: 6, BigRegionFrac: 0.5, BigColdFrac: 0.5,
		SmallChunkPages: [2]int{1, 6}, PreTouch: true,
		HotKiB: 30, HotFrac: 0.65, SeqFrac: 0.40,
		MemRatio: 0.30, StoreRatio: 0.22, ChaseFrac: 0.45, Streams: 24,
	},
	"exchange2_17": { // tiny working set, pure latency play
		Name: "exchange2_17", FootprintMiB: 4, BigRegionFrac: 0.6, BigColdFrac: 0.6,
		SmallChunkPages: [2]int{1, 4}, PreTouch: true,
		HotKiB: 10, HotFrac: 0.85, SeqFrac: 0.50,
		MemRatio: 0.28, StoreRatio: 0.20, ChaseFrac: 0.50, Streams: 16,
	},
	"xz_17": { // dictionary compression: poor VA->PA locality, seq use
		Name: "xz_17", FootprintMiB: 24, BigRegionFrac: 0.25, BigColdFrac: 0.25,
		SmallChunkPages: [2]int{2, 16}, PreTouch: false,
		HotKiB: 40, HotFrac: 0.50, SeqFrac: 0.60,
		MemRatio: 0.36, StoreRatio: 0.28, ChaseFrac: 0.30, Streams: 20,
	},

	// ---- apps that only appear in the Tab. III multicore mixes ----
	"astar": {
		Name: "astar", FootprintMiB: 12, BigRegionFrac: 0.5, BigColdFrac: 0.5,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 36, HotFrac: 0.55, SeqFrac: 0.35,
		MemRatio: 0.35, StoreRatio: 0.22, ChaseFrac: 0.50, Streams: 20,
	},
	"lbm": {
		Name: "lbm", FootprintMiB: 40, BigRegionFrac: 0.95, BigColdFrac: 1.0,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 12, HotFrac: 0.20, SeqFrac: 0.95,
		MemRatio: 0.45, StoreRatio: 0.35, ChaseFrac: 0.10, Streams: 8,
	},
	"zeusmp": {
		Name: "zeusmp", FootprintMiB: 32, BigRegionFrac: 0.9, BigColdFrac: 0.95,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 16, HotFrac: 0.30, SeqFrac: 0.85,
		MemRatio: 0.40, StoreRatio: 0.28, ChaseFrac: 0.15, Streams: 12,
	},
	"leslie3d": {
		Name: "leslie3d", FootprintMiB: 32, BigRegionFrac: 0.92, BigColdFrac: 0.95,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 20, HotFrac: 0.30, SeqFrac: 0.90,
		MemRatio: 0.40, StoreRatio: 0.26, ChaseFrac: 0.15, Streams: 12,
	},
	"milc": {
		Name: "milc", FootprintMiB: 40, BigRegionFrac: 0.9, BigColdFrac: 0.95,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 24, HotFrac: 0.30, SeqFrac: 0.70,
		MemRatio: 0.42, StoreRatio: 0.25, ChaseFrac: 0.30, Streams: 12,
	},
	"tonto": {
		Name: "tonto", FootprintMiB: 6, BigRegionFrac: 0.6, BigColdFrac: 0.6,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 28, HotFrac: 0.65, SeqFrac: 0.55,
		MemRatio: 0.33, StoreRatio: 0.24, ChaseFrac: 0.35, Streams: 20,
	},
	"soplex": {
		Name: "soplex", FootprintMiB: 24, BigRegionFrac: 0.7, BigColdFrac: 0.75,
		SmallChunkPages: [2]int{2, 8}, PreTouch: true,
		HotKiB: 40, HotFrac: 0.50, SeqFrac: 0.60,
		MemRatio: 0.38, StoreRatio: 0.22, ChaseFrac: 0.35, Streams: 16,
	},
}

// FigureApps lists the 26 applications shown individually in the
// paper's single-core figures, in figure order.
func FigureApps() []string {
	return []string{
		"sjeng", "deepsjeng_17", "mcf", "mcf_17", "h264ref", "x264_17",
		"gcc", "gobmk", "omnetpp", "hmmer", "perlbench", "bzip2",
		"libquantum", "bwaves", "cactusADM", "calculix", "gamess",
		"GemsFDTD", "povray", "gromacs", "graph500", "ycsb",
		"xalancbmk_17", "leela_17", "exchange2_17", "xz_17",
	}
}

// AllApps lists every profile (figure apps plus mix-only apps).
func AllApps() []string {
	extra := []string{"astar", "lbm", "zeusmp", "leslie3d", "milc", "tonto", "soplex"}
	return append(FigureApps(), extra...)
}

// Lookup returns the named profile.
func Lookup(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
	}
	return p, nil
}

// MustLookup is Lookup for callers with static names; it panics on
// unknown names.
func MustLookup(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Mix is a multiprogrammed workload from Tab. III.
type Mix struct {
	Name string
	Apps [4]string
}

// Mixes returns the 11 multiprogrammed workloads of Tab. III.
func Mixes() []Mix {
	return []Mix{
		{"mix0", [4]string{"h264ref", "hmmer", "perlbench", "povray"}},
		{"mix1", [4]string{"mcf", "gcc", "bwaves", "cactusADM"}},
		{"mix2", [4]string{"gobmk", "calculix", "GemsFDTD", "gromacs"}},
		{"mix3", [4]string{"astar", "libquantum", "lbm", "zeusmp"}},
		{"mix4", [4]string{"mcf", "perlbench", "leslie3d", "milc"}},
		{"mix5", [4]string{"h264ref", "cactusADM", "calculix", "tonto"}},
		{"mix6", [4]string{"gcc", "libquantum", "gamess", "povray"}},
		{"mix7", [4]string{"sjeng", "omnetpp", "bzip2", "soplex"}},
		{"mix8", [4]string{"graph500", "ycsb", "mcf", "povray"}},
		{"mix9", [4]string{"mcf_17", "xalancbmk_17", "x264_17", "deepsjeng_17"}},
		{"mix10", [4]string{"leela_17", "exchange2_17", "xz_17", "xalancbmk_17"}},
	}
}
