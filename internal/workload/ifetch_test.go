package workload

import (
	"errors"
	"io"
	"testing"

	"sipt/internal/memaddr"
	"sipt/internal/vm"
)

func TestIFetchGeneratorBasics(t *testing.T) {
	sys := smallSystem(t, vm.ScenarioNormal)
	g, err := NewIFetchGenerator(scaled(t, "h264ref", 2), sys, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	lines := make(map[memaddr.VAddr]bool)
	pcs := make(map[uint64]bool)
	for {
		rec, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if rec.IsStore() {
			t.Fatal("instruction fetch marked as store")
		}
		if rec.VA.Line() != rec.VA {
			t.Fatalf("fetch address %#x not line-aligned", uint64(rec.VA))
		}
		pa, _, ok := g.as.Lookup(rec.VA)
		if !ok || pa != rec.PA {
			t.Fatalf("fetch PA inconsistent with address space at %#x", uint64(rec.VA))
		}
		lines[rec.VA] = true
		pcs[rec.PC] = true
	}
	if n != 5000 {
		t.Fatalf("records = %d, want 5000", n)
	}
	// Instruction working sets are small: far fewer distinct lines than
	// fetches (loops), and PCs are function-granular.
	if len(lines) >= n/2 {
		t.Errorf("%d distinct lines out of %d fetches: no loop reuse", len(lines), n)
	}
	if len(pcs) > 256 {
		t.Errorf("%d distinct prediction indices; expected function-granular", len(pcs))
	}
}

func TestIFetchDeterministic(t *testing.T) {
	mk := func() []uint64 {
		sys := vm.NewSystem(vm.ScenarioNormal, 96<<20/memaddr.PageBytes, 0, 5)
		g, err := NewIFetchGenerator(scaled(t, "gcc", 2), sys, 7, 2000)
		if err != nil {
			t.Fatal(err)
		}
		var vas []uint64
		for {
			rec, err := g.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			vas = append(vas, uint64(rec.VA))
		}
		return vas
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fetch %d differs", i)
		}
	}
}

func TestIFetchSingleDelta(t *testing.T) {
	// The text segment faults in link order, so buddy contiguity gives
	// it very few VA->PA deltas (one per contiguous free block it
	// spanned) — the property that makes the IDB learn the I-side
	// almost instantly.
	sys := smallSystem(t, vm.ScenarioNormal)
	g, err := NewIFetchGenerator(scaled(t, "calculix", 2), sys, 3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make(map[uint64]bool)
	for {
		rec, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		deltas[memaddr.IndexDelta(rec.VA, rec.PA, 3)] = true
	}
	if len(deltas) > 4 {
		t.Errorf("text segment has %d distinct deltas, want few (block-granular)", len(deltas))
	}
}
