package workload

import (
	"io"
	"math/rand"

	"sipt/internal/memaddr"
	"sipt/internal/trace"
	"sipt/internal/vm"
)

// IFetchGenerator produces an instruction-fetch address stream for a
// profile's code footprint: a text segment of functions, fetched
// line-by-line with loops (backward jumps within a function) and calls
// (jumps between functions, biased toward a hot set). It backs the
// instruction-cache extension experiment — the paper leaves L1I for
// future work but argues instruction working sets are small and
// I-TLB hit rates high, which is exactly what this stream exhibits.
//
// It implements trace.Reader; records carry one fetch per cache line
// with PC == VA and load semantics.
type IFetchGenerator struct {
	rng     *rand.Rand
	as      *vm.AddressSpace
	funcs   []textFunc
	hot     int // functions 0..hot-1 take most calls
	cur     int
	cursor  uint64 // byte offset within the current function
	loops   int    // remaining loop iterations in the current function
	limit   uint64
	emitted uint64
}

type textFunc struct {
	base memaddr.VAddr
	size uint64
}

// NewIFetchGenerator builds the text segment for the profile on the
// given system and returns the fetch stream. Text size scales with the
// data footprint but stays small (instruction working sets are), and is
// mapped as ordinary 4 KiB pages: Linux does not transparently
// huge-page file-backed text.
func NewIFetchGenerator(p Profile, sys *vm.System, seed int64, limit uint64) (*IFetchGenerator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &IFetchGenerator{
		rng:   rand.New(rand.NewSource(seed ^ int64(hashName(p.Name+"/text")))),
		as:    sys.NewSpace(),
		limit: limit,
	}
	// Text: 64 KiB - 1 MiB depending on footprint; 16-128 functions.
	textBytes := uint64(64 << 10)
	for textBytes < uint64(p.FootprintMiB*1024)<<6 && textBytes < 1<<20 {
		textBytes *= 2
	}
	nFuncs := int(textBytes / (8 << 10))
	if nFuncs < 16 {
		nFuncs = 16
	}
	// One contiguous text mapping, faulted in link order (an exec/mmap
	// of the binary), sliced into functions of varying size.
	base := g.as.Mmap(textBytes)
	if err := g.as.Touch(base, textBytes); err != nil {
		return nil, err
	}
	per := textBytes / uint64(nFuncs)
	for i := 0; i < nFuncs; i++ {
		size := per/2 + uint64(g.rng.Int63n(int64(per)))
		if uint64(i)*per+size > textBytes {
			size = textBytes - uint64(i)*per
		}
		g.funcs = append(g.funcs, textFunc{
			base: base + memaddr.VAddr(uint64(i)*per),
			size: memaddr.AlignDown(size, memaddr.LineBytes) + memaddr.LineBytes,
		})
	}
	g.hot = 1 + nFuncs/8
	g.cur = 0
	g.loops = 1 + g.rng.Intn(8)
	return g, nil
}

// Next implements trace.Reader: one record per fetched cache line.
func (g *IFetchGenerator) Next() (trace.Record, error) {
	if g.limit != 0 && g.emitted >= g.limit {
		return trace.Record{}, io.EOF
	}
	f := g.funcs[g.cur]
	va := f.base + memaddr.VAddr(g.cursor%f.size)
	pa, huge, err := g.as.Translate(va)
	if err != nil {
		return trace.Record{}, err
	}
	g.cursor += memaddr.LineBytes

	// Control flow: at the end of the function body, either loop back
	// or transfer to another function (call/return).
	if g.cursor >= f.size {
		g.cursor = 0
		g.loops--
		if g.loops <= 0 {
			// 80% of transfers target the hot functions.
			if g.rng.Float64() < 0.8 {
				g.cur = g.rng.Intn(g.hot)
			} else {
				g.cur = g.rng.Intn(len(g.funcs))
			}
			g.loops = 1 + g.rng.Intn(8)
		}
	}

	// The prediction index is the function entry, as a fetch engine
	// indexed by branch/jump target would see it — fetch blocks within a
	// function share the predictor entry, like iterations of a loop
	// share a load PC on the data side.
	rec := trace.Record{PC: uint64(f.base), VA: va, PA: pa, DepDist: 1}
	if huge {
		rec.Flags |= trace.FlagHuge
	}
	g.emitted++
	return rec, nil
}
