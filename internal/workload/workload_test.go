package workload

import (
	"errors"
	"io"
	"testing"

	"sipt/internal/memaddr"
	"sipt/internal/trace"
	"sipt/internal/vm"
)

// smallSystem returns a modest physical memory big enough for any
// test profile.
func smallSystem(t *testing.T, sc vm.Scenario) *vm.System {
	t.Helper()
	return vm.NewSystem(sc, 96<<20/memaddr.PageBytes, 80<<20/memaddr.PageBytes, 1)
}

// scaled returns a copy of the named profile with its footprint shrunk
// so tests stay fast.
func scaled(t *testing.T, name string, mib float64) Profile {
	t.Helper()
	p := MustLookup(name)
	p.FootprintMiB = mib
	return p
}

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range AllApps() {
		p := MustLookup(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nonesuch"); err == nil {
		t.Error("Lookup of unknown profile succeeded")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup did not panic")
		}
	}()
	MustLookup("nonesuch")
}

func TestFigureAppsCount(t *testing.T) {
	if got := len(FigureApps()); got != 26 {
		t.Errorf("FigureApps = %d entries, want 26", got)
	}
	if got := len(AllApps()); got != 33 {
		t.Errorf("AllApps = %d entries, want 33", got)
	}
}

func TestMixesMatchTable3(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 11 {
		t.Fatalf("Mixes = %d, want 11", len(mixes))
	}
	// Spot-check rows from Tab. III.
	if mixes[0].Apps != [4]string{"h264ref", "hmmer", "perlbench", "povray"} {
		t.Errorf("mix0 = %v", mixes[0].Apps)
	}
	if mixes[8].Apps != [4]string{"graph500", "ycsb", "mcf", "povray"} {
		t.Errorf("mix8 = %v", mixes[8].Apps)
	}
	// Every app in a mix must have a profile, and every profile must be
	// used at least once across single-core apps + mixes (paper: "every
	// application is used at least once").
	used := make(map[string]bool)
	for _, a := range FigureApps() {
		used[a] = true
	}
	for _, m := range mixes {
		for _, a := range m.Apps {
			if _, err := Lookup(a); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
			used[a] = true
		}
	}
	for _, a := range AllApps() {
		if !used[a] {
			t.Errorf("profile %s unused by any figure or mix", a)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := MustLookup("gcc")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.FootprintMiB = 0 },
		func(p *Profile) { p.BigRegionFrac = 1.5 },
		func(p *Profile) { p.BigColdFrac = -0.1 },
		func(p *Profile) { p.HotKiB = 0 },
		func(p *Profile) { p.HotFrac = 2 },
		func(p *Profile) { p.SeqFrac = -1 },
		func(p *Profile) { p.MemRatio = 0 },
		func(p *Profile) { p.StoreRatio = 1.2 },
		func(p *Profile) { p.ChaseFrac = -0.5 },
		func(p *Profile) { p.Streams = 0 },
		func(p *Profile) { p.SmallChunkPages = [2]int{0, 0} },
		func(p *Profile) { p.SmallChunkPages = [2]int{8, 2} },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
}

func TestGeneratorProducesRecords(t *testing.T) {
	sys := smallSystem(t, vm.ScenarioNormal)
	g, err := NewGenerator(scaled(t, "h264ref", 2), sys, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Collect(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5000 {
		t.Fatalf("got %d records, want 5000", len(recs))
	}
	if _, err := g.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after limit, got %v", err)
	}
	var loads, stores, zeroPC int
	for _, r := range recs {
		if r.IsStore() {
			stores++
		} else {
			loads++
			if r.DepDist == 0 {
				t.Fatal("load with zero DepDist")
			}
		}
		if r.PC == 0 {
			zeroPC++
		}
		if r.VA == 0 {
			t.Fatal("zero VA generated")
		}
	}
	if stores == 0 || loads == 0 {
		t.Errorf("degenerate mix: %d loads, %d stores", loads, stores)
	}
	if zeroPC != 0 {
		t.Errorf("%d records with zero PC", zeroPC)
	}
}

func TestGeneratorTranslationConsistent(t *testing.T) {
	// Every record's PA must agree with the address space mapping, and
	// the huge flag must match the page backing.
	sys := smallSystem(t, vm.ScenarioNormal)
	g, err := NewGenerator(scaled(t, "libquantum", 4), sys, 3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pa, huge, ok := g.Space().Lookup(rec.VA)
		if !ok {
			t.Fatalf("VA %#x not mapped", uint64(rec.VA))
		}
		if pa != rec.PA {
			t.Fatalf("PA mismatch for VA %#x: record %#x, space %#x",
				uint64(rec.VA), uint64(rec.PA), uint64(pa))
		}
		if huge != rec.Huge() {
			t.Fatalf("huge flag mismatch for VA %#x", uint64(rec.VA))
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []trace.Record {
		sys := vm.NewSystem(vm.ScenarioNormal, 96<<20/memaddr.PageBytes, 0, 5)
		g, err := NewGenerator(scaled(t, "gcc", 2), sys, 9, 2000)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := trace.Collect(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorTHPCoverage(t *testing.T) {
	// Huge-page streamers must be hugepage-dominated under THP, and the
	// seven bad apps must have (near-)zero huge coverage.
	sys := smallSystem(t, vm.ScenarioNormal)
	check := func(name string, mib float64, wantMin, wantMax float64) {
		t.Helper()
		g, err := NewGenerator(scaled(t, name, mib), sys, 11, 4000)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := trace.Collect(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		var huge int
		for _, r := range recs {
			if r.Huge() {
				huge++
			}
		}
		frac := float64(huge) / float64(len(recs))
		if frac < wantMin || frac > wantMax {
			t.Errorf("%s: huge fraction %.2f outside [%.2f, %.2f]", name, frac, wantMin, wantMax)
		}
		g.teardown()
	}
	check("libquantum", 16, 0.85, 1.0)
	check("calculix", 4, 0, 0.05)
	check("gromacs", 4, 0, 0.05)
}

func TestGeneratorTHPOffNoHugePages(t *testing.T) {
	sys := smallSystem(t, vm.ScenarioTHPOff)
	g, err := NewGenerator(scaled(t, "libquantum", 8), sys, 13, 2000)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Collect(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Huge() {
			t.Fatal("huge page under THP-off scenario")
		}
	}
}

func TestGeneratorHotSetLocality(t *testing.T) {
	// A high-HotFrac app must concentrate accesses on a small number of
	// distinct lines relative to a cold-heavy app.
	sys := smallSystem(t, vm.ScenarioNormal)
	distinct := func(name string, mib float64) int {
		t.Helper()
		g, err := NewGenerator(scaled(t, name, mib), sys, 17, 24000)
		if err != nil {
			t.Fatal(err)
		}
		lines := make(map[memaddr.VAddr]bool)
		for {
			rec, err := g.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			lines[rec.VA.Line()] = true
		}
		g.teardown()
		return len(lines)
	}
	hotApp := distinct("exchange2_17", 2)
	coldApp := distinct("GemsFDTD", 16)
	if float64(hotApp)*1.3 >= float64(coldApp) {
		t.Errorf("locality inversion: exchange2_17 touches %d lines, GemsFDTD %d", hotApp, coldApp)
	}
}

func TestGeneratorChurnChangesMappings(t *testing.T) {
	sys := smallSystem(t, vm.ScenarioNormal)
	p := scaled(t, "ycsb", 4)
	p.ChurnEvery = 500
	g, err := NewGenerator(p, sys, 19, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Record per-page PAs early and late; churn must remap some pages.
	early := make(map[memaddr.VPN]memaddr.PFN)
	var i int
	for {
		rec, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		i++
		if i <= 2000 {
			early[rec.VA.PageNum()] = rec.PA.PageNum()
		}
	}
	var remapped int
	for vpn, pfn := range early {
		if pa, _, ok := g.Space().Lookup(vpn.Addr(0)); ok && pa.PageNum() != pfn {
			remapped++
		}
	}
	// Churn unmaps chunks entirely or remaps them; either way some early
	// pages must no longer map to the same frame.
	var gone int
	for vpn := range early {
		if _, _, ok := g.Space().Lookup(vpn.Addr(0)); !ok {
			gone++
		}
	}
	if remapped+gone == 0 {
		t.Error("churn had no effect on mappings")
	}
}

func TestGeneratorResetProducesFreshPass(t *testing.T) {
	sys := smallSystem(t, vm.ScenarioNormal)
	g, err := NewGenerator(scaled(t, "povray", 2), sys, 23, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Collect(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.Reset()
	b, err := trace.Collect(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("pass lengths differ: %d vs %d", len(a), len(b))
	}
	// Virtual behaviour identical; physical mapping may differ.
	for i := range a {
		if a[i].PC != b[i].PC || a[i].Gap != b[i].Gap || a[i].VA != b[i].VA {
			t.Fatalf("virtual stream differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorFragmentedScenario(t *testing.T) {
	sys := vm.NewSystem(vm.ScenarioFragmented, 64<<20/memaddr.PageBytes,
		FramesNeeded(scaled(t, "libquantum", 8)), 31)
	g, err := NewGenerator(scaled(t, "libquantum", 8), sys, 37, 2000)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Collect(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge int
	for _, r := range recs {
		if r.Huge() {
			huge++
		}
	}
	// Fragmentation must suppress (nearly) all huge pages.
	if frac := float64(huge) / float64(len(recs)); frac > 0.10 {
		t.Errorf("fragmented scenario still %.0f%% huge", frac*100)
	}
}

func TestFramesNeeded(t *testing.T) {
	p := scaled(t, "mcf", 16)
	if got := FramesNeeded(p); got < 16<<20/memaddr.PageBytes {
		t.Errorf("FramesNeeded = %d, below raw footprint", got)
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	sys := smallSystem(t, vm.ScenarioNormal)
	p := MustLookup("gcc")
	p.MemRatio = 0
	if _, err := NewGenerator(p, sys, 1, 10); err == nil {
		t.Error("invalid profile accepted")
	}
}
