package workload

import (
	"fmt"
	"io"
	"math/rand"

	"sipt/internal/memaddr"
	"sipt/internal/trace"
	"sipt/internal/vm"
)

// chunk is one allocated virtual region.
type chunk struct {
	base memaddr.VAddr
	size uint64
	big  bool
}

// stream is one access stream with its own PC. Sequential streams walk
// a region cache-line by cache-line; random streams sample it uniformly.
type stream struct {
	pc     uint64
	seq    bool
	hot    bool
	chase  bool   // loads carry short use distances (pointer chasing)
	cursor uint64 // byte offset within the current target (sequential)
	// cur is the random-stream walk position, re-drawn per streak.
	cur memaddr.VAddr
	// tbase/tsize cache the stream's target region for the current
	// streak, so a streak walks one coherent region.
	tbase memaddr.VAddr
	tsize uint64
	// chunkIdx is the sticky small-chunk a cold stream currently works
	// in (index into smallIdx); it switches rarely, giving pages their
	// temporal locality.
	chunkIdx int
}

// Generator produces the access trace for one profile, streamingly.
// It implements trace.Reader and trace.Resetter (Reset regenerates the
// identical stream: same seed, same address space).
type Generator struct {
	prof  Profile
	sys   *vm.System
	seed  int64
	limit uint64 // records per pass; 0 = unbounded

	as       *vm.AddressSpace
	rng      *rand.Rand
	chunks   []chunk
	smallIdx []int // indices of small chunks, for churn and cold targets
	bigIdx   []int
	hotBase  memaddr.VAddr
	hotSize  uint64
	streams  []stream
	emitted  uint64
	// churnLeft counts records until the next churn event; it mirrors
	// emitted%ChurnEvery without a per-record integer division.
	churnLeft int
	// meanGap caches 1/MemRatio - 1 (a float divide per record otherwise).
	meanGap float64
	pcSeq   uint64 // PC allocator for streams created after churn
	// cur/streakLeft implement access streaks: one stream issues several
	// consecutive accesses before control moves to another stream, as a
	// loop iteration would. Streaks give pointer chases their chains,
	// and give lines and pages their temporal locality.
	cur        *stream
	streakLeft int
}

// basePC is the synthetic code region; each stream's memory instruction
// gets a distinct PC so PC-indexed predictors behave as they would on
// real loops.
const basePC = 0x400000

// NewGenerator builds the address space (performing the workload's
// allocation phase against the system's buddy allocator) and returns a
// ready trace source. limit bounds the records produced per pass.
func NewGenerator(p Profile, sys *vm.System, seed int64, limit uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{prof: p, sys: sys, seed: seed, limit: limit}
	if err := g.setup(); err != nil {
		return nil, err
	}
	return g, nil
}

// setup performs the allocation phase: big regions first (as an
// initialisation burst would), then small chunks interleaved.
func (g *Generator) setup() error {
	p := g.prof
	g.rng = rand.New(rand.NewSource(g.seed ^ int64(hashName(p.Name))))
	g.as = g.sys.NewSpace()
	g.chunks = g.chunks[:0]
	g.smallIdx = g.smallIdx[:0]
	g.bigIdx = g.bigIdx[:0]
	g.emitted = 0

	totalBytes := uint64(p.FootprintMiB * (1 << 20))
	bigBytes := memaddr.AlignUp(uint64(float64(totalBytes)*p.BigRegionFrac), memaddr.PageBytes)
	smallBytes := totalBytes - bigBytes

	if bigBytes > 0 {
		// Up to four big regions, as a few large arrays would be.
		n := 1 + int(bigBytes/(16<<20))
		if n > 4 {
			n = 4
		}
		per := memaddr.AlignUp(bigBytes/uint64(n), memaddr.PageBytes)
		for i := 0; i < n; i++ {
			base := g.as.Mmap(per)
			if err := g.as.Touch(base, per); err != nil {
				return fmt.Errorf("workload %s: big region: %w", p.Name, err)
			}
			g.bigIdx = append(g.bigIdx, len(g.chunks))
			g.chunks = append(g.chunks, chunk{base: base, size: per, big: true})
		}
	}
	for smallBytes > 0 {
		pages := p.SmallChunkPages[0]
		if p.SmallChunkPages[1] > p.SmallChunkPages[0] {
			pages += g.rng.Intn(p.SmallChunkPages[1] - p.SmallChunkPages[0] + 1)
		}
		size := uint64(pages) * memaddr.PageBytes
		if size > smallBytes {
			size = memaddr.AlignUp(smallBytes, memaddr.PageBytes)
		}
		base := g.as.Mmap(size)
		if p.PreTouch {
			if err := g.as.Touch(base, size); err != nil {
				return fmt.Errorf("workload %s: small chunk: %w", p.Name, err)
			}
		}
		g.smallIdx = append(g.smallIdx, len(g.chunks))
		g.chunks = append(g.chunks, chunk{base: base, size: size})
		if size >= smallBytes {
			break
		}
		smallBytes -= size
	}

	// Hot window: inside the first big region when one exists, else
	// spanning the first small chunks.
	g.hotSize = uint64(p.HotKiB) << 10
	if len(g.bigIdx) > 0 {
		c := g.chunks[g.bigIdx[0]]
		if g.hotSize > c.size {
			g.hotSize = c.size
		}
		g.hotBase = c.base
	} else {
		c := g.chunks[g.smallIdx[0]]
		g.hotBase = c.base
		// The hot set spans multiple small chunks; accesses are routed
		// per-chunk in hotTarget, so only the base matters here.
	}

	// Streams: half hot, half cold; within each, SeqFrac sequential and
	// ChaseFrac pointer-chasing.
	g.streams = g.streams[:0]
	g.pcSeq = 0
	for i := 0; i < p.Streams; i++ {
		s := stream{
			pc:  g.nextPC(),
			hot: i%2 == 0,
			seq: g.rng.Float64() < p.SeqFrac,
		}
		// Pointer chases run over cache-resident structures (hash
		// buckets, tree nodes): hot streams chase readily, cold streams
		// rarely — a cold chase would serialise misses, which real
		// out-of-order windows overlap instead.
		if s.hot {
			s.chase = g.rng.Float64() < minF(1, p.ChaseFrac*1.6)
		} else {
			s.chase = g.rng.Float64() < p.ChaseFrac*0.15
		}
		s.cursor = uint64(g.rng.Intn(1 << 20))
		g.streams = append(g.streams, s)
	}
	g.cur = nil
	g.streakLeft = 0
	g.churnLeft = p.ChurnEvery
	g.meanGap = 1/p.MemRatio - 1
	return nil
}

//sipt:hotpath
func (g *Generator) nextPC() uint64 {
	pc := basePC + g.pcSeq*4
	g.pcSeq++
	return pc
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Reset regenerates the identical stream from the beginning. The
// address space is rebuilt, so physical frames are re-drawn from the
// allocator's *current* state; for deterministic replay across resets
// the caller should materialise the trace (trace.Collect) instead.
// Reset exists for the multicore recycle loop, where "same program,
// later mapping" is exactly what rerunning a real binary would do.
func (g *Generator) Reset() {
	g.teardown()
	if err := g.setup(); err != nil {
		// Setup failed on a system that previously accommodated the
		// workload: only possible if someone else drained physical
		// memory between passes. Treat as a programming error.
		panic(fmt.Sprintf("workload %s: Reset: %v", g.prof.Name, err))
	}
}

// teardown releases the generator's address space back to the system.
func (g *Generator) teardown() {
	for _, c := range g.chunks {
		// Munmap only fails for unknown regions; ours are tracked.
		if err := g.as.Munmap(c.base, c.size); err != nil {
			panic(fmt.Sprintf("workload %s: teardown: %v", g.prof.Name, err))
		}
	}
	g.chunks = nil
}

// Space exposes the backing address space (tools and tests inspect it).
func (g *Generator) Space() *vm.AddressSpace { return g.as }

// Next implements trace.Reader.
func (g *Generator) Next() (trace.Record, error) {
	var rec trace.Record
	err := g.NextInto(&rec)
	return rec, err
}

// NextInto implements trace.InPlaceReader; it is Next without the
// record copy on return (the simulator's per-record hot path).
//
//sipt:hotpath
func (g *Generator) NextInto(rec *trace.Record) error {
	if g.limit != 0 && g.emitted >= g.limit {
		return io.EOF
	}
	p := &g.prof

	if p.ChurnEvery > 0 {
		if g.churnLeft == 0 {
			g.churn()
			g.churnLeft = p.ChurnEvery
		}
		g.churnLeft--
	}

	// Streak scheduling: pick a stream matching a hot/cold draw (so
	// HotFrac is respected regardless of stream population), then stay
	// with it for several accesses.
	if g.cur == nil || g.streakLeft <= 0 {
		hot := g.rng.Float64() < p.HotFrac
		g.cur = g.pickStream(hot)
		g.streakLeft = 4 + g.rng.Intn(8)
		g.retarget(g.cur)
		if !g.cur.seq {
			g.jumpRandom(g.cur)
		}
	}
	s := g.cur
	g.streakLeft--

	va := g.genAddr(s)
	pa, huge, err := g.as.Translate(va)
	if err != nil {
		//siptlint:allow hotalloc: error path, never taken in a healthy run
		return fmt.Errorf("workload %s: %w", p.Name, err)
	}

	rec.PC = s.pc
	rec.VA = va
	rec.PA = pa
	rec.DepDist = 0
	rec.Flags = 0
	if huge {
		rec.Flags = trace.FlagHuge
	}
	if g.rng.Float64() < p.StoreRatio {
		rec.Flags |= trace.FlagStore
	} else {
		if s.chase {
			rec.DepDist = uint8(1 + g.rng.Intn(2))
		} else {
			rec.DepDist = uint8(5 + g.rng.Intn(12))
		}
	}
	gap := int(g.rng.ExpFloat64() * g.meanGap)
	if gap > 1<<16-1 {
		gap = 1<<16 - 1
	}
	rec.Gap = uint16(gap)

	g.emitted++
	return nil
}

// pickStream selects a stream with the requested hotness, scanning from
// a random start so selection is uniform among matching streams.
//
//sipt:hotpath
func (g *Generator) pickStream(hot bool) *stream {
	n := len(g.streams)
	start := g.rng.Intn(n)
	idx := start
	for i := 0; i < n; i++ {
		s := &g.streams[idx]
		if s.hot == hot {
			return s
		}
		idx++
		if idx == n {
			idx = 0
		}
	}
	return &g.streams[start]
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// retarget resolves and caches the region a stream walks for the next
// streak, so the streak is spatially coherent.
func (g *Generator) retarget(s *stream) {
	base, size := g.target(s)
	if size < memaddr.LineBytes {
		size = memaddr.LineBytes
	}
	s.tbase, s.tsize = base, size
}

// jumpRandom repositions a random stream at streak start. Most jumps
// are local (within a 64 KiB neighbourhood of the previous position),
// mirroring the page-level temporal locality real pointer structures
// exhibit; occasional jumps are global.
func (g *Generator) jumpRandom(s *stream) {
	base, size := s.tbase, s.tsize
	inRegion := s.cur >= base && uint64(s.cur) < uint64(base)+size
	if inRegion && g.rng.Float64() < 0.65 {
		// Local jump: +-32 KiB, line-aligned, clamped to the region.
		off := int64(uint64(s.cur) - uint64(base))
		off += int64(g.rng.Intn(64<<10)) - 32<<10
		if off < 0 {
			off = 0
		}
		if uint64(off) >= size {
			off = int64(size - memaddr.LineBytes)
		}
		s.cur = base + memaddr.VAddr(uint64(off)&^uint64(memaddr.LineBytes-1))
		return
	}
	line := uint64(g.rng.Int63n(int64(size / memaddr.LineBytes)))
	s.cur = base + memaddr.VAddr(line*memaddr.LineBytes)
}

// genAddr produces the next virtual address for a stream within its
// streak target.
//
//sipt:hotpath
func (g *Generator) genAddr(s *stream) memaddr.VAddr {
	base, size := s.tbase, s.tsize
	if size == 0 {
		g.retarget(s)
		base, size = s.tbase, s.tsize
	}
	if s.seq {
		// Word-by-word walk: several consecutive accesses share a line,
		// as array scans do (this is also what gives MRU way prediction
		// its high accuracy on real code).
		s.cursor += 8
		return base + memaddr.VAddr(s.cursor%size)
	}
	// Random streams mix word-sequential touches with line-granular
	// jumps inside a +-4 KiB neighbourhood of the walk position: field
	// accesses within an object, then a hop to a sibling object. The
	// line jumps are what make these streams capacity-sensitive.
	if s.cur < base || uint64(s.cur) >= uint64(base)+size {
		line := uint64(g.rng.Int63n(int64(size / memaddr.LineBytes)))
		s.cur = base + memaddr.VAddr(line*memaddr.LineBytes)
	}
	// Hot structures are pointer-dense (high line-jump rate, so their
	// working-set size is felt by the cache); cold scans are mostly
	// word-sequential.
	jump := 0.10
	if s.hot {
		jump = 0.65
	}
	if g.rng.Float64() < jump {
		off := int64(uint64(s.cur) - uint64(base))
		off += int64(g.rng.Intn(8<<10)) - 4<<10
		if off < 0 {
			off = 0
		}
		if uint64(off) >= size {
			off = int64(size - memaddr.LineBytes)
		}
		s.cur = base + memaddr.VAddr(uint64(off)&^uint64(memaddr.LineBytes-1))
	}
	va := s.cur
	s.cur += 8
	return va
}

// target resolves the region a stream currently walks.
//
//sipt:hotpath
func (g *Generator) target(s *stream) (memaddr.VAddr, uint64) {
	p := &g.prof
	if s.hot {
		if len(g.bigIdx) > 0 {
			return g.hotBase, g.hotSize
		}
		// Hot set spread over the leading small chunks covering HotKiB.
		return g.hotSmallTarget(s)
	}
	// Cold access: big region with probability BigColdFrac.
	if len(g.bigIdx) > 0 && g.rng.Float64() < p.BigColdFrac {
		c := g.chunks[g.bigIdx[g.rng.Intn(len(g.bigIdx))]]
		return c.base, c.size
	}
	if len(g.smallIdx) == 0 {
		c := g.chunks[g.bigIdx[0]]
		return c.base, c.size
	}
	// Sequential cold streams drift from chunk to chunk (cursor rolls
	// over into the next chunk); random ones stick to a chunk and
	// switch rarely.
	if s.seq {
		idx := g.smallIdx[(s.cursor/(4*memaddr.PageBytes))%uint64(len(g.smallIdx))]
		c := g.chunks[idx]
		return c.base, c.size
	}
	if s.chunkIdx <= 0 || s.chunkIdx >= len(g.smallIdx) || g.rng.Float64() < 0.15 {
		s.chunkIdx = g.rng.Intn(len(g.smallIdx))
	}
	c := g.chunks[g.smallIdx[s.chunkIdx]]
	return c.base, c.size
}

// hotSmallTarget returns the portion of the small-chunk list that forms
// the hot set when no big region exists.
//
//sipt:hotpath
func (g *Generator) hotSmallTarget(s *stream) (memaddr.VAddr, uint64) {
	var acc uint64
	for _, idx := range g.smallIdx {
		c := g.chunks[idx]
		acc += c.size
		if s.seq {
			// Sequential hot streams cycle through the hot chunks.
			if acc > s.cursor%g.hotSize {
				return c.base, c.size
			}
		} else if g.rng.Int63n(int64(g.hotSize)) < int64(acc) {
			return c.base, c.size
		}
		if acc >= g.hotSize {
			return c.base, c.size
		}
	}
	c := g.chunks[g.smallIdx[len(g.smallIdx)-1]]
	return c.base, c.size
}

// churn remaps one random small cold chunk, modelling allocator
// turnover: the chunk's pages return to the buddy allocator and fresh
// frames (with a fresh delta) replace them.
func (g *Generator) churn() {
	if len(g.smallIdx) == 0 {
		return
	}
	idx := g.smallIdx[g.rng.Intn(len(g.smallIdx))]
	c := &g.chunks[idx]
	if err := g.as.Munmap(c.base, c.size); err != nil {
		return
	}
	base := g.as.Mmap(c.size)
	c.base = base
	if g.prof.PreTouch {
		// Ignore exhaustion here: demand faulting will surface it.
		_ = g.as.Touch(base, c.size)
	}
}

// FramesNeeded estimates the physical frames a profile requires,
// including page-table slack, for sizing vm.NewSystem reserves.
func FramesNeeded(p Profile) uint64 {
	frames := uint64(p.FootprintMiB*(1<<20)) / memaddr.PageBytes
	return frames + frames/8 + 512
}
