package sipt

// Repository-level benchmarks: one per paper table/figure (exercising
// the exact harness that regenerates it, on a reduced app set and trace
// length so `go test -bench=.` stays tractable) plus micro-benchmarks
// on the simulator's hot paths. cmd/siptbench runs the full-size
// versions.

import (
	"context"
	"math/rand"
	"testing"

	"sipt/internal/cache"
	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/dram"
	"sipt/internal/exp"
	"sipt/internal/memaddr"
	"sipt/internal/predictor"
	"sipt/internal/replay"
	"sipt/internal/sim"
	"sipt/internal/tlb"
	"sipt/internal/trace"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

// benchApps is the reduced application set for figure benchmarks: one
// huge-page streamer, one bad-speculation app, one latency-sensitive
// app, one big-data app.
var benchApps = []string{"libquantum", "calculix", "h264ref", "ycsb"}

const benchRecords = 30_000

func benchRunner() *exp.Runner {
	return exp.NewRunner(exp.Options{
		Records: benchRecords,
		Seed:    1,
		Apps:    benchApps,
		Workers: 1,
	})
}

// benchExperiment drives one experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := benchRunner() // fresh cache: measure the real work
		tables, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTab1(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTab2(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkTab3(b *testing.B)  { benchExperiment(b, "tab3") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// Ablations and extensions (beyond the paper's figures).
func BenchmarkAblPredictor(b *testing.B) { benchExperiment(b, "abl-pred") }
func BenchmarkAblIDB(b *testing.B)       { benchExperiment(b, "abl-idb") }
func BenchmarkAblSlowPath(b *testing.B)  { benchExperiment(b, "abl-slow") }
func BenchmarkExtReplay(b *testing.B)    { benchExperiment(b, "ext-replay") }
func BenchmarkExtColoring(b *testing.B)  { benchExperiment(b, "ext-coloring") }
func BenchmarkExtICache(b *testing.B)    { benchExperiment(b, "ext-icache") }

// Fig. 15 (quad-core) and Fig. 18 (2 cores x 4 scenarios) are the
// heaviest experiments; bench them on a single mix / reduced matrix.
func BenchmarkFig15OneMix(b *testing.B) {
	mix := workload.Mixes()[0]
	cfg := sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ms, err := sim.RunMix(context.Background(), mix, cfg, vm.ScenarioNormal, 1, benchRecords)
		if err != nil {
			b.Fatal(err)
		}
		if ms.SumIPC() <= 0 {
			b.Fatal("zero throughput")
		}
	}
}

func BenchmarkFig18OneCell(b *testing.B) {
	prof := workload.MustLookup("gcc")
	cfg := sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := sim.RunApp(context.Background(), prof, cfg, vm.ScenarioFragmented, 1, benchRecords)
		if err != nil {
			b.Fatal(err)
		}
		if st.Core.Instructions == 0 {
			b.Fatal("empty run")
		}
	}
}

// ---- simulator throughput ----

// BenchmarkSimulatorThroughput measures end-to-end records/second of
// the full system (generator + core + SIPT L1 + hierarchy).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof := workload.MustLookup("h264ref")
	cfg := sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := sim.RunApp(context.Background(), prof, cfg, vm.ScenarioNormal, 1, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(0)
		_ = st
	}
}

// ---- hot-path micro-benchmarks ----

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8,
		LineBytes: 64, LatencyCycles: 4})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]memaddr.PAddr, 4096)
	for i := range addrs {
		addrs[i] = memaddr.PAddr(rng.Intn(1<<16) * 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := addrs[i%len(addrs)]
		if !c.Access(pa, false).Hit {
			c.Fill(pa, false)
		}
	}
}

func BenchmarkSIPTAccessCombined(b *testing.B) {
	l := core.New(core.Config{
		Cache: cache.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 2,
			LineBytes: 64, LatencyCycles: 2},
		Mode:       core.ModeCombined,
		TLBLatency: 2,
	})
	rng := rand.New(rand.NewSource(1))
	type op struct {
		va memaddr.VAddr
		pa memaddr.PAddr
	}
	ops := make([]op, 4096)
	for i := range ops {
		vpn := uint64(rng.Intn(512))
		ops[i] = op{memaddr.VPN(vpn).Addr(uint64(rng.Intn(64)) * 64),
			memaddr.PFN(vpn + 2).Addr(uint64(rng.Intn(64)) * 64)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := ops[i%len(ops)]
		r := l.Access(0x400000+uint64(i%32)*4, o.va, o.pa, false)
		if !r.Hit {
			l.Fill(o.pa, false)
		}
	}
}

func BenchmarkPerceptronPredictTrain(b *testing.B) {
	p := predictor.NewPerceptron()
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%64)*4
		p.Train(pc, p.Predict(pc), i%3 != 0)
	}
}

func BenchmarkIDBPredictTrain(b *testing.B) {
	idb := predictor.NewIDB(3, false, 1)
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%64)*4
		page := uint64(i / 8)
		d, ok := idb.Predict(pc, page)
		idb.Train(pc, page, 5, ok, ok && d == 5)
	}
}

func BenchmarkBuddyAllocFree(b *testing.B) {
	bd := vm.NewBuddy(1 << 16)
	for i := 0; i < b.N; i++ {
		pfn, ok := bd.Alloc()
		if !ok {
			b.Fatal("exhausted")
		}
		bd.Free(pfn, 0)
	}
}

func BenchmarkTranslateWarm(b *testing.B) {
	bd := vm.NewBuddy(1 << 14)
	as := vm.NewAddressSpace(bd, false)
	base := as.Mmap(256 * memaddr.PageBytes)
	if err := as.Touch(base, 256*memaddr.PageBytes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := base + memaddr.VAddr(uint64(i%256)*memaddr.PageBytes)
		if _, _, err := as.Translate(va); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	t := tlb.New(tlb.Default())
	for i := 0; i < b.N; i++ {
		t.Translate(memaddr.VAddr(uint64(i%128)<<memaddr.PageShift), false)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.Default())
	for i := 0; i < b.N; i++ {
		d.Access(memaddr.PAddr(uint64(i)*64*17%(1<<28)), i%4 == 0, uint64(i)*30)
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	prof := workload.MustLookup("gcc")
	sys := sim.NewSystem(vm.ScenarioNormal, 1, prof)
	gen, err := workload.NewGenerator(prof, sys, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCodec(b *testing.B) {
	rec := trace.Record{PC: 0x400000, VA: 0x7f0000001000, PA: 0x1234000,
		Gap: 3, DepDist: 2}
	var sink discard
	w, err := trace.NewWriter(&sink)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(28)
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

// discard is an io.Writer that drops everything (hermetic codec bench).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// ---- trace replay ----

// benchBuffer materialises one app's trace once for the replay benches.
func benchBuffer(b *testing.B, app string) *replay.Buffer {
	b.Helper()
	buf, err := sim.Materialize(workload.MustLookup(app), vm.ScenarioNormal, 1, benchRecords)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

// BenchmarkReplayDecode measures the packed-record decode loop alone:
// the per-record cost every fused lane shares.
func BenchmarkReplayDecode(b *testing.B) {
	buf := benchBuffer(b, "gcc")
	cur := buf.Cursor()
	var rec trace.Record
	b.ReportAllocs()
	b.SetBytes(replay.BytesPerRecord)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cur.NextInto(&rec); err != nil {
			cur.Reset()
		}
	}
}

// BenchmarkReplayRun measures one simulation over a pre-materialised
// buffer — BenchmarkSimulatorThroughput minus generation.
func BenchmarkReplayRun(b *testing.B) {
	buf := benchBuffer(b, "h264ref")
	cfg := sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := sim.RunBuffer(context.Background(), "h264ref", buf, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if st.Core.Instructions == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkFusedSweep4 advances four configs in lockstep through one
// decode pass; compare ns/op against 4x BenchmarkReplayRun to see the
// fusion win.
func BenchmarkFusedSweep4(b *testing.B) {
	buf := benchBuffer(b, "h264ref")
	cfgs := []sim.Config{
		sim.Baseline(cpu.OOO()),
		sim.SIPT(cpu.OOO(), 32, 2, core.ModeBypass),
		sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined),
		sim.SIPT(cpu.OOO(), 32, 2, core.ModeIdeal),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sts, err := sim.RunConfigs(context.Background(), "h264ref", buf, cfgs, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(sts) != len(cfgs) {
			b.Fatal("short sweep")
		}
	}
}
