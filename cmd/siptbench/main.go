// Command siptbench regenerates every table and figure of the paper's
// evaluation from the simulator.
//
// Usage:
//
//	siptbench [flags] [experiment ...]
//
// With no arguments it runs every experiment in paper order. Experiment
// ids: tab1 fig1 tab2 fig2 fig3 fig5 fig6 fig7 fig9 fig12 fig13 fig14
// tab3 fig15 fig16 fig17 fig18.
//
// Flags:
//
//	-records N   per-app trace length (default 300000)
//	-seed N      deterministic seed (default 1)
//	-apps list   comma-separated app subset (default: the 26 figure apps)
//	-csv         emit CSV instead of aligned text
//	-list        list experiment ids and exit
//	-bench       run the fixed benchmark subset, write BENCH_<seed>.json
//	-benchout P  override the benchmark output path
//	-cpuprofile P  write a CPU profile to P (view with go tool pprof)
//	-memprofile P  write an end-of-run heap profile to P
//
// The -bench mode ignores -records/-apps/-workers: its settings are
// pinned (see bench.go) so results are comparable across runs and
// commits. Compare two result files with cmd/benchcmp.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sipt/internal/exp"
)

// main delegates to run so deferred profile writers fire before exit.
func main() {
	os.Exit(run())
}

// startCPUProfile begins CPU profiling into path and returns a stop
// function, or nil on failure (already reported).
func startCPUProfile(path string) func() {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: cpuprofile: %v\n", err)
		return nil
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: cpuprofile: %v\n", err)
		f.Close()
		return nil
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile records an end-of-run heap profile after forcing a
// collection, so the snapshot reflects live retention (the trace pool,
// memo cache) rather than transient garbage.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: memprofile: %v\n", err)
	}
}

func run() int {
	records := flag.Uint64("records", exp.DefaultRecords, "per-app trace length")
	seed := flag.Int64("seed", 1, "deterministic seed")
	apps := flag.String("apps", "", "comma-separated app subset")
	csv := flag.Bool("csv", false, "emit CSV")
	markdown := flag.Bool("markdown", false, "emit Markdown tables")
	list := flag.Bool("list", false, "list experiments and exit")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	bench := flag.Bool("bench", false, "run the fixed benchmark subset and write BENCH_<seed>.json")
	benchOut := flag.String("benchout", "", "benchmark output path (default BENCH_<seed>.json)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this path")
	flag.Parse()

	if *cpuProfile != "" {
		if stop := startCPUProfile(*cpuProfile); stop != nil {
			defer stop()
		}
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *bench {
		path := *benchOut
		if path == "" {
			path = fmt.Sprintf("BENCH_%d.json", *seed)
		}
		if err := runBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "siptbench: bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opts := exp.Options{Records: *records, Seed: *seed, Workers: *workers}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	runner := exp.NewRunner(opts).WithContext(ctx)

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, err := exp.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		start := time.Now()
		tables, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "siptbench: %s: %v\n", id, err)
			return 1
		}
		for _, t := range tables {
			var rerr error
			switch {
			case *csv:
				rerr = t.RenderCSV(os.Stdout)
			case *markdown:
				rerr = t.RenderMarkdown(os.Stdout)
			default:
				rerr = t.Render(os.Stdout)
			}
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "siptbench: rendering %s: %v\n", id, rerr)
				return 1
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
