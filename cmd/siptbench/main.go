// Command siptbench regenerates every table and figure of the paper's
// evaluation from the simulator.
//
// Usage:
//
//	siptbench [flags] [experiment ...]
//
// With no arguments it runs every experiment in paper order. Experiment
// ids: tab1 fig1 tab2 fig2 fig3 fig5 fig6 fig7 fig9 fig12 fig13 fig14
// tab3 fig15 fig16 fig17 fig18.
//
// Flags:
//
//	-records N   per-app trace length (default 300000)
//	-seed N      deterministic seed (default 1)
//	-apps list   comma-separated app subset (default: the 26 figure apps)
//	-csv         emit CSV instead of aligned text
//	-list        list experiment ids and exit
//	-bench       run the fixed benchmark subset, write BENCH_<seed>.json
//	-benchout P  override the benchmark output path
//	-count N     bench repetitions per experiment (default 3, best kept)
//	-cpuprofile P  write a CPU profile to P (view with go tool pprof)
//	-memprofile P  write an end-of-run heap profile to P
//
// The -bench mode ignores -records/-apps/-workers: its settings are
// pinned (see bench.go) so results are comparable across runs and
// commits. Compare two result files with cmd/benchcmp.
//
// Exit codes: 0 success, 1 failure, 2 bad flags or unknown experiment,
// 3 the -timeout deadline expired before the run finished.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sipt/internal/exp"
)

// exitDeadline is the exit code for a run cut off by -timeout: distinct
// from ordinary failure (1) so scripts can tell "the experiment is
// wrong" from "the experiment is slow".
const exitDeadline = 3

// main delegates to run so deferred profile writers fire before exit.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// startCPUProfile begins CPU profiling into path and returns a stop
// function, or nil on failure (already reported).
func startCPUProfile(path string) func() {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: cpuprofile: %v\n", err)
		return nil
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: cpuprofile: %v\n", err)
		f.Close()
		return nil
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile records an end-of-run heap profile after forcing a
// collection, so the snapshot reflects live retention (the trace pool,
// memo cache) rather than transient garbage.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "siptbench: memprofile: %v\n", err)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("siptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	records := fs.Uint64("records", exp.DefaultRecords, "per-app trace length")
	seed := fs.Int64("seed", 1, "deterministic seed")
	apps := fs.String("apps", "", "comma-separated app subset")
	csv := fs.Bool("csv", false, "emit CSV")
	markdown := fs.Bool("markdown", false, "emit Markdown tables")
	list := fs.Bool("list", false, "list experiments and exit")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	bench := fs.Bool("bench", false, "run the fixed benchmark subset and write BENCH_<seed>.json")
	benchOut := fs.String("benchout", "", "benchmark output path (default BENCH_<seed>.json)")
	count := fs.Int("count", defaultBenchReps, "bench repetitions per experiment; the fastest is recorded")
	timeout := fs.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write an end-of-run heap profile to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProfile != "" {
		if stop := startCPUProfile(*cpuProfile); stop != nil {
			defer stop()
		}
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *bench {
		path := *benchOut
		if path == "" {
			path = fmt.Sprintf("BENCH_%d.json", *seed)
		}
		if err := runBench(*seed, path, *count); err != nil {
			fmt.Fprintf(stderr, "siptbench: bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-6s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opts := exp.Options{Records: *records, Seed: *seed, Workers: *workers}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	runner := exp.NewRunner(opts).WithContext(ctx)

	ids := fs.Args()
	if len(ids) == 0 {
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, err := exp.Lookup(id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		start := time.Now()
		tables, err := e.Run(runner)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(stderr, "siptbench: %s: deadline exceeded (-timeout elapsed before the run finished)\n", id)
				return exitDeadline
			}
			fmt.Fprintf(stderr, "siptbench: %s: %v\n", id, err)
			return 1
		}
		for _, t := range tables {
			var rerr error
			switch {
			case *csv:
				rerr = t.RenderCSV(stdout)
			case *markdown:
				rerr = t.RenderMarkdown(stdout)
			default:
				rerr = t.Render(stdout)
			}
			if rerr != nil {
				fmt.Fprintf(stderr, "siptbench: rendering %s: %v\n", id, rerr)
				return 1
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
