package main

import (
	"strings"
	"testing"
)

// TestRunDeadlineExitCode: a -timeout too short for the experiment must
// exit with the dedicated code 3 and a clear "deadline exceeded" line,
// not a generic failure.
func TestRunDeadlineExitCode(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-records", "50000000", "-apps", "mcf", "-timeout", "1ms", "fig6"}, &out, &errOut)
	if code != exitDeadline {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitDeadline, errOut.String())
	}
	if !strings.Contains(errOut.String(), "deadline exceeded") {
		t.Errorf("stderr = %q, want a clear deadline message", errOut.String())
	}
}

// TestRunExitCodes pins the rest of the CLI exit-code contract.
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Errorf("-list exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "fig6") {
		t.Error("-list omitted fig6")
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"fig99"}, &out, &errOut); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-records", "2000", "-apps", "mcf", "fig5"}, &out, &errOut); code != 0 {
		t.Errorf("fig5 exit = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if out.Len() == 0 {
		t.Error("fig5 printed no tables")
	}
}
