package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sipt/internal/exp"
)

// The benchmark mode pins every knob so that two BENCH_*.json files are
// comparable run-to-run and machine-to-machine (relatively): same apps,
// same trace length, one worker (parallel speedup is a property of the
// host, not the simulator), and a fixed experiment subset. The values
// deliberately mirror the repository-level benchmarks in bench_test.go.
var benchExperiments = []string{"fig6", "fig9", "fig13"}

const benchRecords = 30_000

var benchApps = []string{"libquantum", "calculix", "h264ref", "ycsb"}

// defaultBenchReps is how many times each experiment is measured by
// default (override with -count); the fastest repetition is reported.
// Taking the minimum is the standard noise estimator: scheduler and
// frequency drift only ever add time, so the fastest of a few runs is
// the closest observation of the true cost.
const defaultBenchReps = 3

// BenchResult is the per-experiment entry of a BENCH_*.json file.
type BenchResult struct {
	ID              string  `json:"id"`
	WallNS          int64   `json:"wall_ns"`
	Simulations     uint64  `json:"simulations"`
	Records         uint64  `json:"records"`
	NSPerRecord     float64 `json:"ns_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

// BenchFile is the schema of a BENCH_*.json file.
type BenchFile struct {
	Schema      int           `json:"schema"`
	GoVersion   string        `json:"go_version"`
	Seed        int64         `json:"seed"`
	Records     uint64        `json:"records_per_app"`
	Apps        []string      `json:"apps"`
	Experiments []BenchResult `json:"experiments"`
}

// runBench executes the fixed benchmark subset and writes the result to
// path. reps is the measurement count per experiment (best is kept).
//
// All repetitions share one trace pool (via Runner.WithFreshCache) but
// none share memoised results, so every repetition re-runs every
// simulation while trace materialisation is paid once, before the first
// timed repetition converges. The recorded records_per_sec therefore
// measures the fused-sweep simulator itself — the quantity the bench
// gate guards — not the synthetic trace generator. (Through BENCH_4 the
// wall time also included per-repetition re-materialisation.)
func runBench(seed int64, path string, reps int) error {
	if reps < 1 {
		reps = 1
	}
	out := BenchFile{
		Schema:    1,
		GoVersion: runtime.Version(),
		Seed:      seed,
		Records:   benchRecords,
		Apps:      benchApps,
	}
	base := exp.NewRunner(exp.Options{
		Records: benchRecords,
		Seed:    seed,
		Apps:    benchApps,
		Workers: 1,
	})
	for _, id := range benchExperiments {
		e, err := exp.Lookup(id)
		if err != nil {
			return err
		}
		var best BenchResult
		for rep := 0; rep < reps; rep++ {
			// A fresh memo cache per repetition so memoisation never
			// hides simulation work; the trace pool stays shared.
			runner := base.WithFreshCache()
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if _, err := e.Run(runner); err != nil {
				return fmt.Errorf("bench %s: %w", id, err)
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)

			sims := runner.Simulations()
			recs := sims * benchRecords
			r := BenchResult{
				ID:          id,
				WallNS:      wall.Nanoseconds(),
				Simulations: sims,
				Records:     recs,
			}
			if recs > 0 {
				r.NSPerRecord = float64(wall.Nanoseconds()) / float64(recs)
				r.RecordsPerSec = float64(recs) / wall.Seconds()
				r.AllocsPerRecord = float64(after.Mallocs-before.Mallocs) / float64(recs)
				r.BytesPerRecord = float64(after.TotalAlloc-before.TotalAlloc) / float64(recs)
			}
			if rep == 0 || r.WallNS < best.WallNS {
				best = r
			}
		}
		out.Experiments = append(out.Experiments, best)
		fmt.Fprintf(os.Stderr, "[bench %s: %v (best of %d), %d sims, %.0f records/sec, %.2f allocs/record]\n",
			id, time.Duration(best.WallNS).Round(time.Millisecond), reps,
			best.Simulations, best.RecordsPerSec, best.AllocsPerRecord)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[bench results written to %s]\n", path)
	return nil
}
