// Command siptlint runs the repository's custom static-analysis suite
// (internal/lint): the analyzers that mechanically enforce the
// simulator's determinism, accounting, concurrency, and failure-model
// invariants.
//
// Usage:
//
//	siptlint [-analyzers ctxflow,lockorder,...] [-list] [-json]
//	         [-timing] [-cache=false] [packages]
//
// Packages default to ./... relative to the module root. Packages are
// parsed and analysed in parallel, and results are cached under the
// user cache dir keyed by a content hash of the module's sources — a
// rerun with no source changes skips loading entirely (disable with
// -cache=false, e.g. when bisecting the linter itself).
//
// The exit code is 1 when any finding survives (findings can be
// acknowledged in place with //siptlint:allow <analyzer>:
// <justification>), 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sipt/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	timing := flag.Bool("timing", false, "report per-analyzer wall time on stderr")
	useCache := flag.Bool("cache", true, "reuse cached results when sources are unchanged")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	azs, err := lint.ByName(*analyzers)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	// Cache probe: a hit skips the load-and-analyse phase entirely.
	// Cache setup failures are not fatal — they just force a full run.
	var cache *lint.Cache
	var key string
	if *useCache {
		if c, cerr := lint.OpenCache(); cerr == nil {
			if k, kerr := lint.CacheKey(wd, patterns, azs); kerr == nil {
				cache, key = c, k
				if diags, ok := c.Get(k); ok {
					if *timing {
						fmt.Fprintln(os.Stderr, "siptlint: cached result (no analysis ran)")
					}
					emit(diags, *jsonOut)
					return
				}
			}
		}
	}

	prog, err := lint.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, timings, err := lint.RunTimed(prog, azs)
	if err != nil {
		fatal(err)
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "siptlint: %-14s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
	}
	if cache != nil {
		// Best-effort: a full cache partition never fails the lint run.
		_ = cache.Put(key, diags)
	}
	emit(diags, *jsonOut)
}

// jsonFinding is the stable machine-readable finding shape consumed by
// CI artifact tooling.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// emit prints findings (text or JSON) and exits 1 when any survive.
func emit(diags []lint.Diagnostic, asJSON bool) {
	if asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "siptlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siptlint:", err)
	os.Exit(2)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
