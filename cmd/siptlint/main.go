// Command siptlint runs the repository's custom static-analysis suite
// (internal/lint): four analyzers that mechanically enforce the
// simulator's determinism and accounting invariants.
//
// Usage:
//
//	siptlint [-analyzers detrand,statsaccount,memokey,hotalloc] [-list] [packages]
//
// Packages default to ./... relative to the module root. The exit code
// is 1 when any finding survives (findings can be acknowledged in place
// with //siptlint:allow <analyzer>: <justification>), 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"sipt/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	azs, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siptlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "siptlint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siptlint:", err)
		os.Exit(2)
	}

	diags, err := lint.Run(prog, azs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siptlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "siptlint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
