// Command tracegen materialises a synthetic workload trace to a binary
// file in the internal/trace format, or inspects an existing trace
// file. Traces carry PC, VA, PA, page flags, instruction gaps, and
// load-use distances — the same information the paper's modified
// Macsim trace generator captured via Linux pagemap/kpageflags.
//
// Usage:
//
//	tracegen -app gcc -records 1000000 -out gcc.sipt
//	tracegen -inspect gcc.sipt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sipt/internal/memaddr"
	"sipt/internal/sim"
	"sipt/internal/trace"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func main() {
	app := flag.String("app", "", "workload name to generate")
	out := flag.String("out", "", "output trace file")
	records := flag.Uint64("records", 1_000_000, "memory accesses to emit")
	seed := flag.Int64("seed", 1, "deterministic seed")
	scenario := flag.String("scenario", "normal", "memory condition")
	inspect := flag.String("inspect", "", "trace file to summarise instead of generating")
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fail(err)
		}
		return
	}
	if *app == "" || *out == "" {
		fail(errors.New("need -app and -out (or -inspect FILE)"))
	}

	var sc vm.Scenario
	found := false
	for _, s := range vm.Scenarios() {
		if s.String() == *scenario {
			sc, found = s, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown scenario %q", *scenario))
	}

	prof, err := workload.Lookup(*app)
	if err != nil {
		fail(err)
	}
	sys := sim.NewSystem(sc, *seed, prof)
	gen, err := workload.NewGenerator(prof, sys, *seed, *records)
	if err != nil {
		fail(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fail(err)
	}
	for {
		rec, err := gen.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fail(err)
		}
		if err := w.Write(rec); err != nil {
			fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d records to %s\n", w.Count(), *out)
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		return err
	}
	var n, loads, stores, huge uint64
	var instr uint64
	var unchanged [4]uint64 // >=1, >=2, >=3 bits, plus total index 0 unused
	pcs := make(map[uint64]struct{})
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		instr += rec.Instructions()
		if rec.IsStore() {
			stores++
		} else {
			loads++
		}
		if rec.Huge() {
			huge++
		}
		u := memaddr.UnchangedBits(rec.VA, rec.PA, 3)
		for k := uint(1); k <= u; k++ {
			unchanged[k]++
		}
		pcs[rec.PC] = struct{}{}
	}
	if n == 0 {
		return errors.New("empty trace")
	}
	fmt.Printf("records        %d (%d instructions)\n", n, instr)
	fmt.Printf("loads/stores   %d / %d\n", loads, stores)
	fmt.Printf("distinct PCs   %d\n", len(pcs))
	fmt.Printf("hugepage       %.4f\n", float64(huge)/float64(n))
	for k := 1; k <= 3; k++ {
		fmt.Printf("unchanged k=%d  %.4f\n", k, float64(unchanged[k])/float64(n))
	}
	return nil
}
