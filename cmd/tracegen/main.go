// Command tracegen materialises a synthetic workload trace to a file,
// or inspects an existing trace file. Traces carry PC, VA, PA, page
// flags, instruction gaps, and load-use distances — the same
// information the paper's modified Macsim trace generator captured via
// Linux pagemap/kpageflags.
//
// Two output formats:
//
//	tracegen -app gcc -records 1000000 -out gcc.trace   legacy stream
//	tracegen -app gcc -records 1000000 -o gcc.sipt      versioned tracefile
//	tracegen -inspect gcc.sipt                          either format
//
// -o writes the internal/tracefile format: a self-describing header
// (app, scenario, seed, record count) plus CRC-protected chunks of
// packed 16-byte records — the format siptd ingests via POST
// /v1/traces. -inspect auto-detects the format by magic.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sipt/internal/memaddr"
	"sipt/internal/sim"
	"sipt/internal/trace"
	"sipt/internal/tracefile"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run is the command body, factored for tests: every failure — bad
// flags, unknown workloads, unwritable output paths — returns an error
// (main exits 1) instead of panicking or half-writing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	app := fs.String("app", "", "workload name to generate")
	out := fs.String("out", "", "output trace file (legacy stream format)")
	outFile := fs.String("o", "", "output trace file (versioned .sipt tracefile format)")
	records := fs.Uint64("records", 1_000_000, "memory accesses to emit")
	seed := fs.Int64("seed", 1, "deterministic seed")
	scenario := fs.String("scenario", "normal", "memory condition")
	inspect := fs.String("inspect", "", "trace file to summarise instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(*inspect, stdout)
	}
	if *app == "" || (*out == "" && *outFile == "") {
		return errors.New("need -app and one of -out/-o (or -inspect FILE)")
	}
	if *out != "" && *outFile != "" {
		return errors.New("-out and -o are mutually exclusive; pick one format")
	}

	sc, err := vm.ParseScenario(*scenario)
	if err != nil {
		return err
	}
	prof, err := workload.Lookup(*app)
	if err != nil {
		return err
	}
	sys := sim.NewSystem(sc, *seed, prof)
	gen, err := workload.NewGenerator(prof, sys, *seed, *records)
	if err != nil {
		return err
	}

	if *outFile != "" {
		meta := tracefile.Meta{App: *app, Scenario: sc, Seed: *seed}
		n, err := writeTracefile(*outFile, meta, gen)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d records to %s (tracefile v%d)\n", n, *outFile, tracefile.FormatVersion)
		return nil
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("creating %s: %w", *out, err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for {
		rec, err := gen.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", *out, err)
	}
	fmt.Fprintf(stdout, "wrote %d records to %s\n", w.Count(), *out)
	return nil
}

// writeTracefile streams the generator into a versioned tracefile,
// returning the record count. The file is created first so an
// unwritable path fails before any generation work.
func writeTracefile(path string, meta tracefile.Meta, gen trace.Reader) (n uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing %s: %w", path, cerr)
		}
	}()
	w, err := tracefile.NewWriter(f, meta)
	if err != nil {
		return 0, err
	}
	for {
		rec, err := gen.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		if err := w.Append(&rec); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return w.Count(), nil
}

// openTrace opens path with the right decoder for its magic: the
// versioned tracefile format or the legacy stream. The returned meta is
// zero for legacy files (they are not self-describing).
func openTrace(path string) (f *os.File, r trace.Reader, meta tracefile.Meta, err error) {
	f, err = os.Open(path)
	if err != nil {
		return nil, nil, meta, err
	}
	var head [tracefile.MagicLen]byte
	n, _ := io.ReadFull(f, head[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, meta, err
	}
	if tracefile.Sniff(head[:n]) {
		tr, err := tracefile.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, meta, err
		}
		return f, tr, tr.Meta(), nil
	}
	fr, err := trace.NewFileReader(f)
	if err != nil {
		f.Close()
		return nil, nil, meta, err
	}
	return f, fr, meta, nil
}

func inspectTrace(path string, stdout io.Writer) error {
	f, r, meta, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if meta.App != "" {
		fmt.Fprintf(stdout, "tracefile v%d: app %s, scenario %s, seed %d, %d records\n",
			tracefile.FormatVersion, meta.App, meta.Scenario, meta.Seed, meta.Records)
	}
	var n, loads, stores, huge uint64
	var instr uint64
	var unchanged [4]uint64 // >=1, >=2, >=3 bits, plus total index 0 unused
	pcs := make(map[uint64]struct{})
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		instr += rec.Instructions()
		if rec.IsStore() {
			stores++
		} else {
			loads++
		}
		if rec.Huge() {
			huge++
		}
		u := memaddr.UnchangedBits(rec.VA, rec.PA, 3)
		for k := uint(1); k <= u; k++ {
			unchanged[k]++
		}
		pcs[rec.PC] = struct{}{}
	}
	if n == 0 {
		return errors.New("empty trace")
	}
	fmt.Fprintf(stdout, "records        %d (%d instructions)\n", n, instr)
	fmt.Fprintf(stdout, "loads/stores   %d / %d\n", loads, stores)
	fmt.Fprintf(stdout, "distinct PCs   %d\n", len(pcs))
	fmt.Fprintf(stdout, "hugepage       %.4f\n", float64(huge)/float64(n))
	for k := 1; k <= 3; k++ {
		fmt.Fprintf(stdout, "unchanged k=%d  %.4f\n", k, float64(unchanged[k])/float64(n))
	}
	return nil
}
