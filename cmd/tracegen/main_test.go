package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sipt/internal/cpu"
	"sipt/internal/sim"
	"sipt/internal/trace"
	"sipt/internal/tracefile"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

// writeTestTrace materialises a small trace file.
func writeTestTrace(t *testing.T, path string, records uint64) {
	t.Helper()
	prof := workload.MustLookup("hmmer")
	prof.FootprintMiB = 2
	sys := sim.NewSystem(vm.ScenarioNormal, 1, prof)
	gen, err := workload.NewGenerator(prof, sys, 1, records)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := gen.Next()
		if err != nil {
			break
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestInspectTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sipt")
	writeTestTrace(t, path, 2000)
	if err := inspectTrace(path, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestInspectTraceMissingFile(t *testing.T) {
	if err := inspectTrace(filepath.Join(t.TempDir(), "nope.sipt"), io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInspectTraceEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.sipt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := inspectTrace(path, io.Discard); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestRunEmitsTracefile drives the command end to end with -o: the
// output must carry the versioned format, inspect cleanly, and match
// the harness's own encoding of the same trace byte for byte.
func TestRunEmitsTracefile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lq.sipt")
	var out strings.Builder
	err := run([]string{"-app", "libquantum", "-records", "3000", "-seed", "7", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 3000 records") {
		t.Errorf("output = %q", out.String())
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tracefile.Sniff(got) {
		t.Fatal("output does not carry the tracefile magic")
	}
	prof := workload.MustLookup("libquantum")
	buf, err := sim.Materialize(prof, vm.ScenarioNormal, 7, 3000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tracefile.Encode(tracefile.Meta{App: "libquantum", Scenario: vm.ScenarioNormal, Seed: 7}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("tracegen -o output differs from the harness encoding of the same trace")
	}

	var insp strings.Builder
	if err := inspectTrace(path, &insp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(insp.String(), "app libquantum") || !strings.Contains(insp.String(), "records        3000") {
		t.Errorf("inspect output = %q", insp.String())
	}
}

// TestRunUnwritableOutput: a bad output path must surface as an error
// from run (a non-zero exit), not a panic, for both formats.
func TestRunUnwritableOutput(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "x.sipt")
	for _, flagName := range []string{"-o", "-out"} {
		err := run([]string{"-app", "libquantum", "-records", "10", flagName, bad}, io.Discard)
		if err == nil {
			t.Fatalf("%s %s: unwritable path accepted", flagName, bad)
		}
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("%s: error %q does not name the path", flagName, err)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-app", "libquantum"},                          // no output
		{"-records", "10", "-o", "x.sipt"},              // no app
		{"-app", "nope", "-records", "10", "-o", "x"},   // unknown app
		{"-app", "libquantum", "-o", "a", "-out", "b"},  // both formats
		{"-app", "libquantum", "-scenario", "bogus", "-o", "x"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestReplayedTraceMatchesGenerated(t *testing.T) {
	// A materialised trace replayed through the simulator must produce
	// the same result as the generator-driven run.
	path := filepath.Join(t.TempDir(), "r.sipt")
	writeTestTrace(t, path, 3000)

	prof := workload.MustLookup("hmmer")
	prof.FootprintMiB = 2
	cfg := sim.Baseline(cpu.OOO())
	direct, err := sim.RunApp(context.Background(), prof, cfg, vm.ScenarioNormal, 1, 3000)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim.RunTrace(context.Background(), "hmmer-file", r, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Core != replay.Core {
		t.Errorf("replay diverged: %+v vs %+v", direct.Core, replay.Core)
	}
	if direct.L1 != replay.L1 {
		t.Error("replay L1 stats diverged")
	}
}
