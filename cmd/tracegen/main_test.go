package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"sipt/internal/cpu"
	"sipt/internal/sim"
	"sipt/internal/trace"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

// writeTestTrace materialises a small trace file.
func writeTestTrace(t *testing.T, path string, records uint64) {
	t.Helper()
	prof := workload.MustLookup("hmmer")
	prof.FootprintMiB = 2
	sys := sim.NewSystem(vm.ScenarioNormal, 1, prof)
	gen, err := workload.NewGenerator(prof, sys, 1, records)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := gen.Next()
		if err != nil {
			break
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestInspectTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sipt")
	writeTestTrace(t, path, 2000)
	if err := inspectTrace(path); err != nil {
		t.Fatal(err)
	}
}

func TestInspectTraceMissingFile(t *testing.T) {
	if err := inspectTrace(filepath.Join(t.TempDir(), "nope.sipt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInspectTraceEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.sipt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := inspectTrace(path); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReplayedTraceMatchesGenerated(t *testing.T) {
	// A materialised trace replayed through the simulator must produce
	// the same result as the generator-driven run.
	path := filepath.Join(t.TempDir(), "r.sipt")
	writeTestTrace(t, path, 3000)

	prof := workload.MustLookup("hmmer")
	prof.FootprintMiB = 2
	cfg := sim.Baseline(cpu.OOO())
	direct, err := sim.RunApp(context.Background(), prof, cfg, vm.ScenarioNormal, 1, 3000)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := sim.RunTrace(context.Background(), "hmmer-file", r, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Core != replay.Core {
		t.Errorf("replay diverged: %+v vs %+v", direct.Core, replay.Core)
	}
	if direct.L1 != replay.L1 {
		t.Error("replay L1 stats diverged")
	}
}
