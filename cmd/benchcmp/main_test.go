package main

import (
	"math"
	"strings"
	"testing"
)

// TestDeltaPct pins the zero/NaN/Inf baseline handling: a metric with
// no meaningful relative change prints "n/a", never +Inf% or NaN%.
func TestDeltaPct(t *testing.T) {
	cases := []struct {
		name     string
		old, new float64
		want     string
	}{
		{"improvement", 100, 110, "+10.0%"},
		{"regression", 100, 85, "-15.0%"},
		{"flat", 100, 100, "+0.0%"},
		{"zero baseline", 0, 5, "n/a"},
		{"both zero", 0, 0, "n/a"},
		{"negative baseline", -3, 5, "n/a"},
		{"nan baseline", math.NaN(), 5, "n/a"},
		{"inf baseline", math.Inf(1), 5, "n/a"},
		{"nan new", 100, math.NaN(), "n/a"},
		{"inf new", 100, math.Inf(1), "n/a"},
	}
	for _, c := range cases {
		if got := deltaPct(c.old, c.new); got != c.want {
			t.Errorf("%s: deltaPct(%v, %v) = %q, want %q", c.name, c.old, c.new, got, c.want)
		}
	}
}

// TestCompareGate pins the regression gate: a zero or non-finite
// baseline must never trip it, genuine regressions must, and the table
// must render n/a rather than Inf for degenerate baselines.
func TestCompareGate(t *testing.T) {
	file := func(rs, allocs float64) benchFile {
		return benchFile{Schema: 1, Experiments: []benchResult{
			{ID: "fig6", RecordsPerSec: rs, AllocsPerRecord: allocs},
		}}
	}
	cases := []struct {
		name           string
		old, cur       benchFile
		threshold      float64
		allocThreshold float64
		wantFail       bool
		wantInBody     string
	}{
		{"no change", file(1000, 1), file(1000, 1), 10, 10, false, "+0.0%"},
		{"throughput regression", file(1000, 1), file(500, 1), 10, 10, true, "THROUGHPUT REGRESSION"},
		{"alloc regression", file(1000, 1), file(1000, 2), 10, 10, true, "ALLOC REGRESSION"},
		{"within threshold", file(1000, 1), file(950, 1), 10, 10, false, ""},
		// The decoupling bug: widening -threshold to ride out wall-clock
		// noise used to widen the alloc gate with it. A 25% alloc growth
		// must still fail under -threshold 50 as long as -alloc-threshold
		// stays at 10.
		{"wide threshold keeps alloc gate", file(1000, 1), file(990, 1.25), 50, 10, true, "ALLOC REGRESSION"},
		{"wide threshold excuses throughput only", file(1000, 1), file(600, 1), 50, 10, false, ""},
		{"alloc threshold widened deliberately", file(1000, 1), file(1000, 1.25), 10, 30, false, ""},
		{"tight alloc threshold", file(1000, 2), file(1000, 2.2), 10, 5, true, "ALLOC REGRESSION"},
		// The satellite bug: a zero-baseline metric (AllocsPerRecord 0)
		// must print n/a and leave the gate closed even though the new
		// value is "infinitely" larger.
		{"zero alloc baseline", file(1000, 0), file(1000, 3), 10, 10, false, "n/a"},
		{"zero throughput baseline", file(0, 1), file(800, 1), 10, 10, false, "n/a"},
		{"nan baseline", file(math.NaN(), 1), file(800, 1), 10, 10, false, "n/a"},
		{"inf baseline", file(math.Inf(1), 1), file(800, 1), 10, 10, false, "n/a"},
	}
	for _, c := range cases {
		var out, errOut strings.Builder
		failed, compared := compare(c.old, c.cur, c.threshold, c.allocThreshold, &out, &errOut)
		if failed != c.wantFail {
			t.Errorf("%s: failed = %v, want %v (stdout:\n%s)", c.name, failed, c.wantFail, out.String())
		}
		if compared != 1 {
			t.Errorf("%s: compared = %d, want 1", c.name, compared)
		}
		if c.wantInBody != "" && !strings.Contains(out.String(), c.wantInBody) {
			t.Errorf("%s: table missing %q:\n%s", c.name, c.wantInBody, out.String())
		}
		// The raw value columns may show a degenerate number, but the
		// delta columns must never render Inf% or NaN%.
		if strings.Contains(out.String(), "Inf%") || strings.Contains(out.String(), "NaN%") {
			t.Errorf("%s: delta column leaks Inf/NaN:\n%s", c.name, out.String())
		}
	}
}

// TestCompareMissingExperiment: an experiment that vanished from the
// new file fails the comparison.
func TestCompareMissingExperiment(t *testing.T) {
	old := benchFile{Schema: 1, Experiments: []benchResult{
		{ID: "fig6", RecordsPerSec: 1000, AllocsPerRecord: 1},
		{ID: "fig13", RecordsPerSec: 1000, AllocsPerRecord: 1},
	}}
	cur := benchFile{Schema: 1, Experiments: []benchResult{
		{ID: "fig6", RecordsPerSec: 1000, AllocsPerRecord: 1},
	}}
	var out, errOut strings.Builder
	failed, compared := compare(old, cur, 10, 10, &out, &errOut)
	if !failed {
		t.Error("missing experiment did not fail the comparison")
	}
	if compared != 1 {
		t.Errorf("compared = %d, want 1", compared)
	}
	if !strings.Contains(errOut.String(), "fig13 missing") {
		t.Errorf("stderr missing the lost experiment:\n%s", errOut.String())
	}
}
