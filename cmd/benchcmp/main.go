// Command benchcmp compares two BENCH_*.json files produced by
// `siptbench -bench` and fails when throughput regresses.
//
// Usage:
//
//	benchcmp [-threshold pct] [-alloc-threshold pct] old.json new.json
//
// For every experiment present in both files it prints a delta table —
// old and new records/sec with the relative change, and old and new
// allocs/record with the relative change — and exits non-zero if any
// experiment's records/sec dropped by more than -threshold (default
// 10%). Allocation-count regressions beyond -alloc-threshold (default
// 10%) are also fatal, and the gate is deliberately separate:
// allocs/record is deterministic, so unlike wall time it cannot be
// excused as machine noise, and widening -threshold to ride out a noisy
// machine must not quietly widen the alloc gate with it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
)

// benchResult mirrors cmd/siptbench's BenchResult (kept separate so the
// two binaries stay independently buildable; the JSON schema is the
// contract).
type benchResult struct {
	ID              string  `json:"id"`
	WallNS          int64   `json:"wall_ns"`
	Simulations     uint64  `json:"simulations"`
	Records         uint64  `json:"records"`
	NSPerRecord     float64 `json:"ns_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

type benchFile struct {
	Schema      int           `json:"schema"`
	Seed        int64         `json:"seed"`
	Records     uint64        `json:"records_per_app"`
	Experiments []benchResult `json:"experiments"`
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != 1 {
		return f, fmt.Errorf("%s: unsupported schema %d", path, f.Schema)
	}
	return f, nil
}

// deltaPct formats the relative change from old to new as a signed
// percentage. A zero, NaN, or infinite baseline — e.g. AllocsPerRecord
// 0, or a hand-edited file — has no meaningful relative change, so it
// prints "n/a" instead of +Inf%/NaN% (and gated(...) below makes sure
// such metrics never trip the regression gate either).
func deltaPct(old, new float64) string {
	if !gateable(old) || math.IsNaN(new) || math.IsInf(new, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// gateable reports whether a baseline value can anchor a relative
// regression check: it must be a positive finite number.
func gateable(old float64) bool {
	return old > 0 && !math.IsInf(old, 0)
}

// compare prints the delta table for every experiment in both files
// and reports whether any throughput regression beyond threshold
// percent, alloc regression beyond allocThreshold percent, or missing
// experiment was found, plus how many experiments were compared. Split
// from main so the gate logic is testable.
func compare(old, cur benchFile, threshold, allocThreshold float64, stdout, stderr io.Writer) (failed bool, compared int) {
	newByID := make(map[string]benchResult, len(cur.Experiments))
	for _, r := range cur.Experiments {
		newByID[r.ID] = r
	}

	limit := 1 - threshold/100
	allocLimit := 1 - allocThreshold/100
	fmt.Fprintf(stdout, "%-8s %14s %14s %9s %10s %10s %9s\n",
		"exp", "old rec/s", "new rec/s", "Δrec/s", "old allocs", "new allocs", "Δallocs")
	for _, o := range old.Experiments {
		n, ok := newByID[o.ID]
		if !ok {
			fmt.Fprintf(stderr, "benchcmp: %s missing from new file\n", o.ID)
			failed = true
			continue
		}
		compared++
		verdict := ""
		if gateable(o.RecordsPerSec) && n.RecordsPerSec < o.RecordsPerSec*limit {
			verdict = "  THROUGHPUT REGRESSION"
			failed = true
		}
		// Relative alloc growth only matters once the absolute rate is
		// non-trivial: below one allocation per ~10 records the counter
		// is dominated by per-run setup, not per-record behaviour.
		if gateable(o.AllocsPerRecord) && n.AllocsPerRecord > o.AllocsPerRecord/allocLimit &&
			n.AllocsPerRecord-o.AllocsPerRecord > 0.1 {
			verdict += "  ALLOC REGRESSION"
			failed = true
		}
		fmt.Fprintf(stdout, "%-8s %14.0f %14.0f %9s %10.2f %10.2f %9s%s\n",
			o.ID, o.RecordsPerSec, n.RecordsPerSec, deltaPct(o.RecordsPerSec, n.RecordsPerSec),
			o.AllocsPerRecord, n.AllocsPerRecord, deltaPct(o.AllocsPerRecord, n.AllocsPerRecord),
			verdict)
	}
	return failed, compared
}

func main() {
	threshold := flag.Float64("threshold", 10, "throughput regression threshold in percent")
	allocThreshold := flag.Float64("alloc-threshold", 10, "allocs/record regression threshold in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold pct] [-alloc-threshold pct] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	failed, compared := compare(old, cur, *threshold, *allocThreshold, os.Stdout, os.Stderr)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no experiments in common")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL (>%g%% throughput / >%g%% alloc regression)\n", *threshold, *allocThreshold)
		os.Exit(1)
	}
	fmt.Println("benchcmp: PASS")
}
