// Command benchcmp compares two BENCH_*.json files produced by
// `siptbench -bench` and fails when throughput regresses.
//
// Usage:
//
//	benchcmp [-threshold pct] old.json new.json
//
// For every experiment present in both files it prints a delta table —
// old and new records/sec with the relative change, and old and new
// allocs/record with the relative change — and exits non-zero if any
// experiment's records/sec dropped by more than the threshold (default
// 10%). Allocation-count regressions beyond the threshold are also
// fatal: allocs/record is deterministic, so unlike wall time it cannot
// be excused as machine noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchResult mirrors cmd/siptbench's BenchResult (kept separate so the
// two binaries stay independently buildable; the JSON schema is the
// contract).
type benchResult struct {
	ID              string  `json:"id"`
	WallNS          int64   `json:"wall_ns"`
	Simulations     uint64  `json:"simulations"`
	Records         uint64  `json:"records"`
	NSPerRecord     float64 `json:"ns_per_record"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

type benchFile struct {
	Schema      int           `json:"schema"`
	Seed        int64         `json:"seed"`
	Records     uint64        `json:"records_per_app"`
	Experiments []benchResult `json:"experiments"`
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != 1 {
		return f, fmt.Errorf("%s: unsupported schema %d", path, f.Schema)
	}
	return f, nil
}

// deltaPct formats the relative change from old to new as a signed
// percentage ("n/a" when old is zero, so a division cannot blow up on
// hand-edited files).
func deltaPct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold pct] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newByID := make(map[string]benchResult, len(cur.Experiments))
	for _, r := range cur.Experiments {
		newByID[r.ID] = r
	}

	limit := 1 - *threshold/100
	failed := false
	compared := 0
	fmt.Printf("%-8s %14s %14s %9s %10s %10s %9s\n",
		"exp", "old rec/s", "new rec/s", "Δrec/s", "old allocs", "new allocs", "Δallocs")
	for _, o := range old.Experiments {
		n, ok := newByID[o.ID]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: %s missing from %s\n", o.ID, flag.Arg(1))
			failed = true
			continue
		}
		compared++
		verdict := ""
		if o.RecordsPerSec > 0 && n.RecordsPerSec < o.RecordsPerSec*limit {
			verdict = "  THROUGHPUT REGRESSION"
			failed = true
		}
		// Relative alloc growth only matters once the absolute rate is
		// non-trivial: below one allocation per ~10 records the counter
		// is dominated by per-run setup, not per-record behaviour.
		if o.AllocsPerRecord > 0 && n.AllocsPerRecord > o.AllocsPerRecord/limit &&
			n.AllocsPerRecord-o.AllocsPerRecord > 0.1 {
			verdict += "  ALLOC REGRESSION"
			failed = true
		}
		fmt.Printf("%-8s %14.0f %14.0f %9s %10.2f %10.2f %9s%s\n",
			o.ID, o.RecordsPerSec, n.RecordsPerSec, deltaPct(o.RecordsPerSec, n.RecordsPerSec),
			o.AllocsPerRecord, n.AllocsPerRecord, deltaPct(o.AllocsPerRecord, n.AllocsPerRecord),
			verdict)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no experiments in common")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: FAIL (>%g%% regression)\n", *threshold)
		os.Exit(1)
	}
	fmt.Println("benchcmp: PASS")
}
