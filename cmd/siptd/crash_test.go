// Kill-9 chaos gate: SIGKILL a journaled daemon mid-sweep — a real
// process, a real signal, no cooperation — restart it over the same
// directories, and assert the recovery contract: no lost or duplicated
// job IDs, the resumed sweep's output byte-identical to an
// uninterrupted reference, already-checkpointed lanes served from the
// store (not re-simulated), and the serve_journal_replayed_total /
// serve_sweeps_resumed_total accounting exact. The daemon is the test
// binary re-executing itself (TestHelperSiptd), so the gate runs under
// -race with no prebuilt artifacts.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"sipt/internal/journal"
)

const (
	helperEnv     = "SIPTD_HELPER_PROCESS"
	helperArgsEnv = "SIPTD_HELPER_ARGS"
	// helperArgsSep separates flag values in the env var; the unit
	// separator cannot appear in paths or flag values.
	helperArgsSep = "\x1f"
)

// TestHelperSiptd is not a test: it is the daemon body the chaos gate
// execs. Re-running the test binary (the standard helper-process
// pattern) gives the gate a real PID to SIGKILL.
func TestHelperSiptd(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process for the kill-9 gate; not a test")
	}
	args := strings.Split(os.Getenv(helperArgsEnv), helperArgsSep)
	if err := run(context.Background(), args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "siptd:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemon execs one siptd generation and returns its process and
// base URL. The caller owns the process; cleanup reaps it if the test
// forgot (Kill on a dead process is a harmless error).
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSiptd$")
	cmd.Env = append(os.Environ(), helperEnv+"=1",
		helperArgsEnv+"="+strings.Join(args, helperArgsSep))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // best-effort reap
		cmd.Wait()         //nolint:errcheck
	})

	// Scan the child's stdout for the listen line, then keep draining it
	// in the background so the child never blocks on a full pipe.
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		var line strings.Builder
		buf := make([]byte, 1)
		for {
			if _, err := stdout.Read(buf); err != nil {
				return
			}
			if buf[0] == '\n' {
				select {
				case lines <- line.String():
				default:
				}
				line.Reset()
				continue
			}
			line.WriteByte(buf[0])
		}
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before printing its listen line")
			}
			if addr, found := strings.CutPrefix(line, "siptd: listening on http://"); found {
				go func() {
					for range lines { // drain forever
					}
				}()
				return cmd, "http://" + addr
			}
		case <-deadline:
			t.Fatal("no listen line within 30s")
		}
	}
}

// sigkill delivers SIGKILL and reaps the process — the one transition a
// drain-based shutdown can never exercise.
func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // the kill is the expected exit
}

func submitJSON(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: status %d (%s)", url, resp.StatusCode, raw)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}

// jobView is the slice of JobView the gate compares byte-for-byte.
type jobView struct {
	Status string          `json:"status"`
	Error  string          `json:"error"`
	Tables json.RawMessage `json:"tables"`
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, base, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		switch v.Status {
		case "done":
			return v
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// metricValue extracts one metric's value from Prometheus text format.
func metricValue(t *testing.T, metrics, name string) int64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, metrics)
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// The sweep under test: two apps x three configs = six result lanes,
// sized so a single worker takes seconds — a wide window to SIGKILL
// after some lanes are checkpointed but before the sweep finishes.
const gateSweep = `{"experiment":"fig6","apps":["mcf","libquantum"],"records":150000}`

func TestKill9RecoveryGate(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-9 gate execs real daemons; skipped in -short")
	}

	// Uninterrupted reference generation: same sweep, fresh dirs.
	refStore, refJnl := t.TempDir(), t.TempDir()
	refCmd, refBase := startDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-records", "2000", "-store-dir", refStore, "-journal-dir", refJnl)
	if id := submitJSON(t, refBase+"/v1/sweep", gateSweep); id != "job-1" {
		t.Fatalf("reference sweep admitted as %s, want job-1", id)
	}
	ref := waitDone(t, refBase, "job-1", 180*time.Second)
	sigkill(t, refCmd)
	refJobs, _, err := journal.Replay(refJnl)
	if err != nil {
		t.Fatal(err)
	}
	if len(refJobs) != 1 || len(refJobs[0].Lanes) == 0 {
		t.Fatalf("reference journal %+v, want one job with lanes", refJobs)
	}
	totalLanes := len(refJobs[0].Lanes)

	// Victim generation: same sweep, then SIGKILL once at least one lane
	// is checkpointed and at least one is still missing.
	storeDir, jnlDir := t.TempDir(), t.TempDir()
	victim, victimBase := startDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-records", "2000", "-store-dir", storeDir, "-journal-dir", jnlDir)
	if id := submitJSON(t, victimBase+"/v1/sweep", gateSweep); id != "job-1" {
		t.Fatalf("victim sweep admitted as %s, want job-1", id)
	}
	var checkpointed int
	killDeadline := time.Now().Add(180 * time.Second)
	for {
		jobs, _, err := journal.Replay(jnlDir) // read-only: safe on a live journal
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) == 1 {
			if jobs[0].Settled() {
				t.Fatalf("sweep finished before the kill window; raise gateSweep records")
			}
			if n := len(jobs[0].Lanes); n >= 1 && n < totalLanes {
				checkpointed = n
				break
			}
		}
		if time.Now().After(killDeadline) {
			t.Fatal("no lane checkpoint appeared within 180s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sigkill(t, victim)

	// Recovery generation over the murdered state.
	revived, base := startDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-records", "2000", "-store-dir", storeDir, "-journal-dir", jnlDir)
	got := waitDone(t, base, "job-1", 180*time.Second)
	if string(got.Tables) != string(ref.Tables) {
		t.Errorf("resumed sweep output differs from uninterrupted reference:\n%s\nvs\n%s",
			got.Tables, ref.Tables)
	}

	metrics := getMetrics(t, base)
	if n := metricValue(t, metrics, "serve_journal_replayed_total"); n != 1 {
		t.Errorf("serve_journal_replayed_total = %d, want 1", n)
	}
	if n := metricValue(t, metrics, "serve_sweeps_resumed_total"); n != 1 {
		t.Errorf("serve_sweeps_resumed_total = %d, want 1", n)
	}
	// Checkpointed lanes came back as store reads, not simulations: the
	// revived daemon simulated at most the lanes the kill lost.
	if sims := metricValue(t, metrics, "serve_simulations_total"); sims > int64(totalLanes-checkpointed) {
		t.Errorf("revived daemon simulated %d lanes, want <= %d (%d of %d were checkpointed)",
			sims, totalLanes-checkpointed, checkpointed, totalLanes)
	}

	// IDs stay dense across the crash: the next admission is job-2, and
	// the journal holds exactly jobs 1..N with no duplicates.
	if id := submitJSON(t, base+"/v1/run", `{"app":"mcf"}`); id != "job-2" {
		t.Errorf("post-recovery admission = %s, want job-2", id)
	}
	waitDone(t, base, "job-2", 180*time.Second)
	sigkill(t, revived)
	jobs, maxSeq, err := journal.Replay(jnlDir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, js := range jobs {
		if seen[js.Seq] {
			t.Errorf("duplicate journaled sequence %d", js.Seq)
		}
		seen[js.Seq] = true
		if js.Seq == 0 || js.Seq > maxSeq {
			t.Errorf("job %s sequence %d outside [1, %d]", js.ID, js.Seq, maxSeq)
		}
	}
	if len(jobs) != 2 || maxSeq != 2 {
		t.Errorf("journal holds %d jobs, maxSeq %d; want 2 dense jobs", len(jobs), maxSeq)
	}
}

// TestJournalDirUnwritable: a -journal-dir that cannot be created (a
// path through a regular file, which fails even for root) is a startup
// error naming the path — mirroring the tracegen -o convention.
func TestJournalDirUnwritable(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := file + "/journal"
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0",
		"-store-dir", t.TempDir(), "-journal-dir", bad}, io.Discard)
	if err == nil {
		t.Fatal("run accepted an unwritable -journal-dir")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the journal path %q", err, bad)
	}
}

// TestJournalDirIncompatible: a journal directory written by some other
// (or future) format version refuses to start, naming the path, instead
// of silently clobbering it.
func TestJournalDirIncompatible(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/00000001.wal", []byte("SCAS\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0",
		"-store-dir", t.TempDir(), "-journal-dir", dir}, io.Discard)
	if err == nil {
		t.Fatal("run accepted an incompatible journal")
	}
	if !strings.Contains(err.Error(), dir) {
		t.Errorf("error %q does not name the journal path %q", err, dir)
	}
	if !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("error %q does not say incompatible", err)
	}
}

// TestJournalRequiresStoreDir: the journal's checkpoints and result
// digests point into the store; configuring one without the other is a
// misconfiguration caught at startup.
func TestJournalRequiresStoreDir(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0",
		"-journal-dir", t.TempDir()}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-store-dir") {
		t.Fatalf("run() = %v, want an error demanding -store-dir", err)
	}
}
