// Command siptd serves the SIPT simulator over HTTP: single runs,
// experiment sweeps, job status/cancellation, health, and metrics. See
// internal/serve for the API and DESIGN.md §8 for the architecture.
//
// Usage:
//
//	siptd [-addr :8080] [-workers N] [-queue N] [-records N] [-seed N]
//	      [-cache N] [-maxjobs N] [-trace-pool-mb N]
//	      [-store-dir DIR] [-store-mb N] [-trace-store-mb N] [-max-trace-mb N]
//	      [-journal-dir DIR] [-journal-mb N]
//	      [-coordinator host1:8080,host2:8080] [-shard-timeout D]
//	      [-faults spec] [-fault-seed N] [-ready-timeout D]
//
// -store-dir enables the content-addressed persistent store
// (internal/store): simulation results and materialised traces are
// written under DIR/results and survive restarts — a warmed daemon
// serves previously computed figures byte-identically without
// re-simulating. It also enables trace ingestion (POST /v1/traces,
// stored under DIR/traces) and replay-by-digest runs.
//
// -journal-dir enables crash-safe serving (DESIGN.md §15): every
// admission is journaled before the 202, sweep progress is checkpointed
// per lane, and a restarted daemon replays the journal — finished jobs
// are served from the store, interrupted sweeps resume re-running only
// missing lanes. Requires -store-dir. An unwritable directory or an
// incompatible journal version is a startup error naming the path.
//
// -faults arms the deterministic fault-injection framework (see
// internal/fault) from a spec like "sched.worker.panic:1/64"; it
// defaults to the SIPT_FAULTS environment variable and is meant for
// chaos drills and staging, never steady-state production.
//
// -coordinator turns the daemon into a sweep-fabric coordinator over
// the listed worker daemons (DESIGN.md §11): sweeps partition into
// trace-affine shards dispatched over the workers' /v1/shard API, and
// the merged report is bit-identical to a single-node run. A
// coordinator refuses shard work itself (403 on POST /v1/shard).
//
// On startup it prints one line, "siptd: listening on http://ADDR",
// which scripts/serve_smoke.sh parses to find the ephemeral port. On
// SIGTERM/SIGINT it stops admitting work, finishes every accepted job
// (cancelled jobs stop at their next context poll), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sipt/internal/exp"
	"sipt/internal/fabric"
	"sipt/internal/fault"
	"sipt/internal/journal"
	"sipt/internal/metrics"
	"sipt/internal/serve"
	"sipt/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "siptd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored for tests: it listens, serves until
// ctx is cancelled (the signal path), then drains and shuts down.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("siptd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
	workers := fs.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "waiting-job bound per priority class")
	records := fs.Uint64("records", 0, "default trace length per run (0 = harness default)")
	seed := fs.Int64("seed", 1, "default simulation seed")
	cacheEntries := fs.Int("cache", 0, "result cache capacity in entries (0 = default)")
	maxJobs := fs.Int("maxjobs", 0, "retained job records (0 = default)")
	tracePoolMB := fs.Int("trace-pool-mb", 0, "materialised trace pool budget in MiB (0 = default)")
	storeDir := fs.String("store-dir", "", "persistent store directory; empty disables persistence and trace ingestion")
	journalDir := fs.String("journal-dir", "", "write-ahead job journal directory; empty disables crash-safe serving (requires -store-dir)")
	journalMB := fs.Int("journal-mb", 0, "journal segment rotation threshold in MiB (0 = default 4)")
	storeMB := fs.Int("store-mb", 0, "result store byte budget in MiB (0 = default 512)")
	traceStoreMB := fs.Int("trace-store-mb", 0, "ingested trace store byte budget in MiB (0 = default 512)")
	maxTraceMB := fs.Int("max-trace-mb", 0, "POST /v1/traces upload size cap in MiB (0 = default 64)")
	faults := fs.String("faults", os.Getenv(fault.EnvSpec),
		"fault-injection spec, e.g. sched.worker.panic:1/64 (default $"+fault.EnvSpec+")")
	faultSeed := fs.Int64("fault-seed", 1, "seed for fault-injection decisions")
	readyTimeout := fs.Duration("ready-timeout", 0, "/readyz worker heartbeat deadline (0 = default 2s)")
	coordinator := fs.String("coordinator", "",
		"comma-separated worker base URLs; non-empty turns this daemon into a sweep-fabric coordinator")
	shardTimeout := fs.Duration("shard-timeout", 0, "coordinator per-shard dispatch deadline (0 = default 5m)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *faults != "" {
		spec, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		if err := fault.Arm(spec, *faultSeed); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "siptd: faults armed: %s (seed %d)\n", spec, *faultSeed)
	}

	// One registry serves both the HTTP layer's metrics and, in
	// coordinator mode, the fabric_* series.
	reg := metrics.NewRegistry()
	var remote exp.Remote
	if *coordinator != "" {
		fleet, err := workerURLs(*coordinator)
		if err != nil {
			return err
		}
		remote = fabric.NewCoordinator(fabric.Config{
			Workers:      fleet,
			Registry:     reg,
			ShardTimeout: *shardTimeout,
		})
		fmt.Fprintf(stdout, "siptd: coordinator over %d workers\n", len(fleet))
	}

	var resultStore, traceStore *store.Store
	if *storeDir != "" {
		var err error
		resultStore, err = store.Open(filepath.Join(*storeDir, "results"), int64(*storeMB)<<20)
		if err != nil {
			return fmt.Errorf("opening result store: %w", err)
		}
		traceStore, err = store.Open(filepath.Join(*storeDir, "traces"), int64(*traceStoreMB)<<20)
		if err != nil {
			return fmt.Errorf("opening trace store: %w", err)
		}
		fmt.Fprintf(stdout, "siptd: persistent store at %s\n", *storeDir)
	}

	var jnl *journal.Journal
	if *journalDir != "" {
		if *storeDir == "" {
			return fmt.Errorf("-journal-dir %s requires -store-dir (checkpoints and results live in the store)", *journalDir)
		}
		var err error
		jnl, err = journal.Open(*journalDir, int64(*journalMB)<<20)
		if err != nil {
			return fmt.Errorf("opening journal %s: %w", *journalDir, err)
		}
		defer jnl.Close()
		fmt.Fprintf(stdout, "siptd: job journal at %s\n", *journalDir)
	}

	runner := exp.NewRunner(exp.Options{
		Records:      *records,
		Seed:         *seed,
		CacheEntries: *cacheEntries,
		TracePoolMB:  *tracePoolMB,
		Remote:       remote,
		Store:        resultStore,
	})
	srv := serve.New(serve.Config{
		Runner:        runner,
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxJobs:       *maxJobs,
		Registry:      reg,
		ReadyTimeout:  *readyTimeout,
		DisableShards: *coordinator != "",
		TraceStore:    traceStore,
		MaxTraceBytes: int64(*maxTraceMB) << 20,
		Journal:       jnl,
		ResultStore:   resultStore,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "siptd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful exit: stop admission and finish every accepted job,
	// then close the listener and in-flight HTTP exchanges.
	fmt.Fprintln(stdout, "siptd: draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	// The drain let every accepted job finish; Close releases the
	// server lifecycle context behind them.
	srv.Close()
	fmt.Fprintln(stdout, "siptd: drained, exiting")
	return nil
}

// workerURLs parses the -coordinator flag: comma-separated base URLs,
// each normalised to an http:// scheme with no trailing slash.
func workerURLs(spec string) ([]string, error) {
	var urls []string
	for _, w := range strings.Split(spec, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		urls = append(urls, strings.TrimRight(w, "/"))
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("-coordinator: no worker URLs in %q", spec)
	}
	return urls, nil
}
