package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"sipt/internal/fault"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, drives
// a run through the HTTP API, then cancels the context (the SIGTERM
// path) and checks run() returns cleanly — the same lifecycle
// scripts/serve_smoke.sh exercises against the real binary.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	r, w := newPipe()
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-records", "2000"}, w) }()

	base := "http://" + waitForAddr(t, r, 10*time.Second)

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"app":"mcf"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("run submit: status %d, id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(jr.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if v.Status == "done" {
			break
		}
		if v.Status == "failed" || v.Status == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job ended %q", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel() // SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run() did not return after cancellation")
	}
}

func TestRunBadFlags(t *testing.T) {
	r, w := newPipe()
	_ = r
	if err := run(context.Background(), []string{"-bogus"}, w); err == nil {
		t.Error("run accepted a bad flag")
	}
}

// pipe is a minimal synchronised line buffer for capturing stdout.
type pipe struct {
	ch chan byte
}

func newPipe() (*pipe, *pipe) {
	p := &pipe{ch: make(chan byte, 1<<16)}
	return p, p
}

func (p *pipe) Write(b []byte) (int, error) {
	for _, c := range b {
		p.ch <- c
	}
	return len(b), nil
}

// waitForAddr reads the startup line and extracts the listen address.
func waitForAddr(t *testing.T, p *pipe, timeout time.Duration) string {
	t.Helper()
	var line strings.Builder
	deadline := time.After(timeout)
	for {
		select {
		case c := <-p.ch:
			if c == '\n' {
				s := line.String()
				if strings.HasPrefix(s, "siptd: listening on http://") {
					return strings.TrimPrefix(s, "siptd: listening on http://")
				}
				line.Reset()
				continue
			}
			line.WriteByte(c)
		case <-deadline:
			t.Fatalf("no listen line within %v (got %q)", timeout, line.String())
		}
	}
}

// TestRunFaultFlagsAndReadyz boots the daemon with a (harmless) fault
// spec armed and checks the startup log announces it, /readyz answers
// ready, and an unknown point in -faults fails startup fast.
func TestRunFaultFlagsAndReadyz(t *testing.T) {
	t.Cleanup(fault.Disarm)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	r, w := newPipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-records", "2000",
			"-faults", "serve.decode.slow:1/1000000", "-fault-seed", "7",
			"-ready-timeout", "5s"}, w)
	}()

	base := "http://" + waitForAddr(t, r, 10*time.Second)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run() did not return after cancellation")
	}
}

// TestRunRejectsUnknownFaultPoint: a typo in -faults must fail startup
// with ErrUnknownPoint, not silently arm nothing.
func TestRunRejectsUnknownFaultPoint(t *testing.T) {
	t.Cleanup(fault.Disarm)
	_, w := newPipe()
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0",
		"-faults", "no.such.point:1/2"}, w)
	if !errors.Is(err, fault.ErrUnknownPoint) {
		t.Fatalf("run() = %v, want ErrUnknownPoint", err)
	}
}
