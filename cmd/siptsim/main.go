// Command siptsim runs a single workload on a single simulated system
// and prints the full statistics: IPC, SIPT outcome breakdown,
// hit rates, predictor accuracy, TLB behaviour, and the energy split.
//
// Usage:
//
//	siptsim -app mcf -l1 32K2w -mode combined [-core ooo] [-scenario normal]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/energy"
	"sipt/internal/sim"
	"sipt/internal/trace"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

// simContext returns the context a run executes under: Background for
// timeout 0, a deadline-bound context otherwise. The cancel func must
// be called (or deferred) by the caller.
func simContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "siptsim:", err)
	os.Exit(1)
}

func main() {
	app := flag.String("app", "h264ref", "workload name (see -listapps)")
	l1 := flag.String("l1", "32K8w", "L1 geometry, e.g. 32K2w")
	mode := flag.String("mode", "vipt", "indexing mode: vipt|ideal|naive|bypass|combined")
	coreKind := flag.String("core", "ooo", "core model: ooo|inorder")
	scenario := flag.String("scenario", "normal", "memory condition: normal|fragmented|thp-off|no-contig")
	wayPred := flag.Bool("waypred", false, "enable MRU way prediction")
	records := flag.Uint64("records", sim.DefaultRecords, "trace length (memory accesses)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	traceFile := flag.String("trace", "", "replay a binary trace file instead of generating (-app is used as the label)")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
	listApps := flag.Bool("listapps", false, "list workload names and exit")
	flag.Parse()

	if *listApps {
		for _, name := range workload.AllApps() {
			fmt.Println(name)
		}
		return
	}

	sizeKiB, ways, err := sim.ParseGeometry(*l1)
	if err != nil {
		fail(err)
	}
	m, err := core.ParseMode(*mode)
	if err != nil {
		fail(err)
	}
	sc, err := vm.ParseScenario(*scenario)
	if err != nil {
		fail(err)
	}
	var coreCfg cpu.Config
	switch strings.ToLower(*coreKind) {
	case "ooo":
		coreCfg = cpu.OOO()
	case "inorder":
		coreCfg = cpu.InOrder()
	default:
		fail(fmt.Errorf("bad core %q (ooo|inorder)", *coreKind))
	}

	cfg := sim.SIPT(coreCfg, sizeKiB, ways, m)
	cfg.WayPrediction = *wayPred
	cfg.NoContig = sc == vm.ScenarioNoContig

	ctx, cancel := simContext(*timeout)
	defer cancel()

	var st sim.Stats
	label := *app
	if *traceFile != "" {
		label = *traceFile
		f, err := os.Open(*traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r, err := trace.NewFileReader(f)
		if err != nil {
			fail(err)
		}
		st, err = sim.RunTrace(ctx, *traceFile, trace.Limit(r, *records), cfg, *seed)
		if err != nil {
			fail(err)
		}
	} else {
		prof, err := workload.Lookup(*app)
		if err != nil {
			fail(err)
		}
		st, err = sim.RunApp(ctx, prof, cfg, sc, *seed, *records)
		if err != nil {
			fail(err)
		}
	}

	fmt.Printf("workload      %s (%s, %s, %s)\n", label, cfg.Label(), coreCfg.Name, sc)
	fmt.Printf("instructions  %d\n", st.Core.Instructions)
	fmt.Printf("cycles        %d\n", st.Core.Cycles)
	fmt.Printf("IPC           %.4f\n", st.IPC())
	fmt.Printf("loads/stores  %d / %d\n", st.Core.Loads, st.Core.Stores)
	fmt.Println()
	fmt.Printf("L1 accesses   %d (hit rate %.4f)\n", st.L1.Accesses, st.L1C.HitRate())
	fmt.Printf("  fast        %d (%.4f)\n", st.L1.Fast, st.L1.FastFraction())
	fmt.Printf("  slow        %d (extra accesses %.4f/access)\n", st.L1.Slow, st.L1.ExtraAccessRate())
	fmt.Printf("  bypassed    %d\n", st.L1.Bypassed)
	fmt.Printf("  fast-spec   %d, fast-idb %d\n", st.L1.FastSpec, st.L1.FastIDB)
	if st.Bypass.Predictions > 0 {
		fmt.Printf("bypass pred   accuracy %.4f (spec %d, bypass %d, oppLoss %d, extra %d)\n",
			st.Bypass.Accuracy(), st.Bypass.CorrectSpeculate, st.Bypass.CorrectBypass,
			st.Bypass.OpportunityLoss, st.Bypass.ExtraAccess)
	}
	if st.IDB.Lookups > 0 {
		fmt.Printf("IDB           hit rate %.4f over %d lookups\n", st.IDB.HitRate(), st.IDB.Lookups)
	}
	if st.L1.WayProbes > 0 {
		fmt.Printf("way pred      accuracy %.4f\n", st.L1.WayAccuracy())
	}
	fmt.Println()
	fmt.Printf("L2            accesses %d, hit rate %.4f\n", st.L2.Accesses, st.L2.HitRate())
	fmt.Printf("TLB           L1 hits %d, L2 hits %d, walks %d\n", st.TLB.L1Hits, st.TLB.L2Hits, st.TLB.Walks)
	fmt.Println()
	b := st.Energy
	fmt.Printf("energy        total %.4g J (dynamic %.4g, static %.4g, predictor %.4g)\n",
		b.Total(), b.Dynamic(), b.Static(), b.PredictorJ)
	for _, l := range []energy.Level{energy.L1, energy.L2, energy.LLC} {
		fmt.Printf("  %-4s        dyn %.4g J, static %.4g J\n", l, b.DynamicJ[l], b.StaticJ[l])
	}
}
