// Command siptsim runs a single workload on a single simulated system
// and prints the full statistics: IPC, SIPT outcome breakdown,
// hit rates, predictor accuracy, TLB behaviour, and the energy split.
//
// Usage:
//
//	siptsim -app mcf -l1 32K2w -mode combined [-core ooo] [-scenario normal]
//
// Exit codes: 0 success, 1 simulation or input failure, 2 bad flags,
// 3 the -timeout deadline expired before the run finished.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/energy"
	"sipt/internal/sim"
	"sipt/internal/trace"
	"sipt/internal/tracefile"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

// exitDeadline is the exit code for a run cut off by -timeout: distinct
// from ordinary failure (1) so scripts can tell "the simulation is
// wrong" from "the simulation is slow".
const exitDeadline = 3

// simContext returns the context a run executes under: Background for
// timeout 0, a deadline-bound context otherwise. The cancel func must
// be called (or deferred) by the caller.
func simContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// simFail reports a simulation error: exitDeadline with a clear
// "deadline exceeded" line when the -timeout budget ran out, 1
// otherwise.
func simFail(stderr io.Writer, err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "siptsim: deadline exceeded (-timeout elapsed before the run finished)")
		return exitDeadline
	}
	fmt.Fprintln(stderr, "siptsim:", err)
	return 1
}

// run is the command body, factored for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("siptsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "h264ref", "workload name (see -listapps)")
	l1 := fs.String("l1", "32K8w", "L1 geometry, e.g. 32K2w")
	mode := fs.String("mode", "vipt", "indexing mode: vipt|ideal|naive|bypass|combined")
	coreKind := fs.String("core", "ooo", "core model: ooo|inorder")
	scenario := fs.String("scenario", "normal", "memory condition: normal|fragmented|thp-off|no-contig")
	wayPred := fs.Bool("waypred", false, "enable MRU way prediction")
	records := fs.Uint64("records", sim.DefaultRecords, "trace length (memory accesses)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	traceFile := fs.String("trace", "", "replay a trace file (legacy stream or versioned .sipt format, auto-detected) instead of generating")
	timeout := fs.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
	listApps := fs.Bool("listapps", false, "list workload names and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "siptsim:", err)
		return 1
	}

	if *listApps {
		for _, name := range workload.AllApps() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	sizeKiB, ways, err := sim.ParseGeometry(*l1)
	if err != nil {
		return fail(err)
	}
	m, err := core.ParseMode(*mode)
	if err != nil {
		return fail(err)
	}
	sc, err := vm.ParseScenario(*scenario)
	if err != nil {
		return fail(err)
	}
	var coreCfg cpu.Config
	switch strings.ToLower(*coreKind) {
	case "ooo":
		coreCfg = cpu.OOO()
	case "inorder":
		coreCfg = cpu.InOrder()
	default:
		return fail(fmt.Errorf("bad core %q (ooo|inorder)", *coreKind))
	}

	cfg := sim.SIPT(coreCfg, sizeKiB, ways, m)
	cfg.WayPrediction = *wayPred
	cfg.NoContig = sc == vm.ScenarioNoContig

	ctx, cancel := simContext(*timeout)
	defer cancel()

	var st sim.Stats
	label := *app
	if *traceFile != "" {
		label = *traceFile
		f, err := os.Open(*traceFile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		// Sniff the magic to pick the decoder: the versioned tracefile
		// format (tracegen -o) or the legacy stream (tracegen -out).
		br := bufio.NewReader(f)
		head, _ := br.Peek(tracefile.MagicLen)
		var r trace.Reader
		if tracefile.Sniff(head) {
			tr, err := tracefile.NewReader(br)
			if err != nil {
				return fail(err)
			}
			r = tr
		} else {
			fr, err := trace.NewFileReader(br)
			if err != nil {
				return fail(err)
			}
			r = fr
		}
		st, err = sim.RunTrace(ctx, *traceFile, trace.Limit(r, *records), cfg, *seed)
		if err != nil {
			return simFail(stderr, err)
		}
	} else {
		prof, err := workload.Lookup(*app)
		if err != nil {
			return fail(err)
		}
		st, err = sim.RunApp(ctx, prof, cfg, sc, *seed, *records)
		if err != nil {
			return simFail(stderr, err)
		}
	}

	fmt.Fprintf(stdout, "workload      %s (%s, %s, %s)\n", label, cfg.Label(), coreCfg.Name, sc)
	fmt.Fprintf(stdout, "instructions  %d\n", st.Core.Instructions)
	fmt.Fprintf(stdout, "cycles        %d\n", st.Core.Cycles)
	fmt.Fprintf(stdout, "IPC           %.4f\n", st.IPC())
	fmt.Fprintf(stdout, "loads/stores  %d / %d\n", st.Core.Loads, st.Core.Stores)
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "L1 accesses   %d (hit rate %.4f)\n", st.L1.Accesses, st.L1C.HitRate())
	fmt.Fprintf(stdout, "  fast        %d (%.4f)\n", st.L1.Fast, st.L1.FastFraction())
	fmt.Fprintf(stdout, "  slow        %d (extra accesses %.4f/access)\n", st.L1.Slow, st.L1.ExtraAccessRate())
	fmt.Fprintf(stdout, "  bypassed    %d\n", st.L1.Bypassed)
	fmt.Fprintf(stdout, "  fast-spec   %d, fast-idb %d\n", st.L1.FastSpec, st.L1.FastIDB)
	if st.Bypass.Predictions > 0 {
		fmt.Fprintf(stdout, "bypass pred   accuracy %.4f (spec %d, bypass %d, oppLoss %d, extra %d)\n",
			st.Bypass.Accuracy(), st.Bypass.CorrectSpeculate, st.Bypass.CorrectBypass,
			st.Bypass.OpportunityLoss, st.Bypass.ExtraAccess)
	}
	if st.IDB.Lookups > 0 {
		fmt.Fprintf(stdout, "IDB           hit rate %.4f over %d lookups\n", st.IDB.HitRate(), st.IDB.Lookups)
	}
	if st.L1.WayProbes > 0 {
		fmt.Fprintf(stdout, "way pred      accuracy %.4f\n", st.L1.WayAccuracy())
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "L2            accesses %d, hit rate %.4f\n", st.L2.Accesses, st.L2.HitRate())
	fmt.Fprintf(stdout, "TLB           L1 hits %d, L2 hits %d, walks %d\n", st.TLB.L1Hits, st.TLB.L2Hits, st.TLB.Walks)
	fmt.Fprintln(stdout)
	b := st.Energy
	fmt.Fprintf(stdout, "energy        total %.4g J (dynamic %.4g, static %.4g, predictor %.4g)\n",
		b.Total(), b.Dynamic(), b.Static(), b.PredictorJ)
	for _, l := range []energy.Level{energy.L1, energy.L2, energy.LLC} {
		fmt.Fprintf(stdout, "  %-4s        dyn %.4g J, static %.4g J\n", l, b.DynamicJ[l], b.StaticJ[l])
	}
	return 0
}
