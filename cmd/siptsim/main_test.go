package main

import (
	"testing"

	"sipt/internal/core"
	"sipt/internal/vm"
)

func TestParseGeometry(t *testing.T) {
	cases := []struct {
		in      string
		size, w int
		ok      bool
	}{
		{"32K2w", 32, 2, true},
		{"32k8W", 32, 8, true},
		{"128K4w", 128, 4, true},
		{"32", 0, 0, false},
		{"abc", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		size, ways, err := parseGeometry(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseGeometry(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (size != c.size || ways != c.w) {
			t.Errorf("parseGeometry(%q) = %d,%d; want %d,%d", c.in, size, ways, c.size, c.w)
		}
	}
}

func TestParseMode(t *testing.T) {
	good := map[string]core.Mode{
		"vipt": core.ModeVIPT, "IDEAL": core.ModeIdeal, "naive": core.ModeNaive,
		"Bypass": core.ModeBypass, "combined": core.ModeCombined,
	}
	for in, want := range good {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("warp"); err == nil {
		t.Error("parseMode accepted garbage")
	}
}

func TestParseScenario(t *testing.T) {
	for _, sc := range vm.Scenarios() {
		got, err := parseScenario(sc.String())
		if err != nil || got != sc {
			t.Errorf("parseScenario(%q) = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := parseScenario("zero-g"); err == nil {
		t.Error("parseScenario accepted garbage")
	}
}
