package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"time"

	"testing"

	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/sim"
	"sipt/internal/tracefile"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func TestParseGeometry(t *testing.T) {
	cases := []struct {
		in      string
		size, w int
		ok      bool
	}{
		{"32K2w", 32, 2, true},
		{"32k8W", 32, 8, true},
		{"128K4w", 128, 4, true},
		{"32", 0, 0, false},
		{"abc", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		size, ways, err := sim.ParseGeometry(c.in)
		if c.ok != (err == nil) {
			t.Errorf("sim.ParseGeometry(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (size != c.size || ways != c.w) {
			t.Errorf("sim.ParseGeometry(%q) = %d,%d; want %d,%d", c.in, size, ways, c.size, c.w)
		}
	}
}

func TestParseMode(t *testing.T) {
	good := map[string]core.Mode{
		"vipt": core.ModeVIPT, "IDEAL": core.ModeIdeal, "naive": core.ModeNaive,
		"Bypass": core.ModeBypass, "combined": core.ModeCombined,
	}
	for in, want := range good {
		got, err := core.ParseMode(in)
		if err != nil || got != want {
			t.Errorf("core.ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := core.ParseMode("warp"); err == nil {
		t.Error("parseMode accepted garbage")
	}
}

func TestParseScenario(t *testing.T) {
	for _, sc := range vm.Scenarios() {
		got, err := vm.ParseScenario(sc.String())
		if err != nil || got != sc {
			t.Errorf("vm.ParseScenario(%q) = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := vm.ParseScenario("zero-g"); err == nil {
		t.Error("parseScenario accepted garbage")
	}
}

// TestTimeoutCancelsRunPromptly is the -timeout regression test: a run
// whose deadline expires must return quickly (not after the full
// trace), and with the distinct context error so callers can tell a
// timeout from a simulation failure.
func TestTimeoutCancelsRunPromptly(t *testing.T) {
	ctx, cancel := simContext(time.Millisecond)
	defer cancel()
	prof, err := workload.Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	// 50M records would take minutes; the 1ms deadline must cut it off.
	_, err = sim.RunApp(ctx, prof, sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined),
		vm.ScenarioNormal, 1, 50_000_000)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v to return", elapsed)
	}
}

// TestSimContextZeroMeansNoLimit verifies -timeout 0 runs without a
// deadline.
func TestSimContextZeroMeansNoLimit(t *testing.T) {
	ctx, cancel := simContext(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("timeout 0 produced a deadline-bound context")
	}
	if ctx.Err() != nil {
		t.Errorf("fresh no-limit context already errored: %v", ctx.Err())
	}
}

// TestRunDeadlineExitCode drives the full CLI: a -timeout too short for
// the trace must exit with the dedicated code 3 and say "deadline
// exceeded" plainly on stderr.
func TestRunDeadlineExitCode(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-app", "mcf", "-records", "50000000", "-timeout", "1ms"}, &out, &errOut)
	if code != exitDeadline {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitDeadline, errOut.String())
	}
	if !strings.Contains(errOut.String(), "deadline exceeded") {
		t.Errorf("stderr = %q, want a clear deadline message", errOut.String())
	}
}

// TestRunExitCodes pins the rest of the CLI exit-code contract.
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-listapps"}, &out, &errOut); code != 0 {
		t.Errorf("-listapps exit = %d, want 0", code)
	}
	if out.Len() == 0 {
		t.Error("-listapps printed nothing")
	}
	if code := run([]string{"-l1", "banana"}, &out, &errOut); code != 1 {
		t.Errorf("bad geometry exit = %d, want 1", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-app", "mcf", "-records", "2000"}, &out, &errOut); code != 0 {
		t.Errorf("normal run exit = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "IPC") {
		t.Error("normal run printed no IPC line")
	}
}

// TestReplayTracefileFormat: -trace auto-detects the versioned
// tracefile format (tracegen -o) and replays it bit-identically to the
// generator-driven run of the same workload.
func TestReplayTracefileFormat(t *testing.T) {
	prof := workload.MustLookup("libquantum")
	buf, err := sim.Materialize(prof, vm.ScenarioNormal, 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tracefile.Encode(tracefile.Meta{App: "libquantum", Scenario: vm.ScenarioNormal, Seed: 5}, buf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lq.sipt")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}

	var fromFile, live strings.Builder
	if code := run([]string{"-trace", path, "-l1", "32K2w", "-mode", "combined", "-seed", "5", "-records", "2000"},
		&fromFile, &fromFile); code != 0 {
		t.Fatalf("replay exit %d: %s", code, fromFile.String())
	}
	if code := run([]string{"-app", "libquantum", "-l1", "32K2w", "-mode", "combined", "-seed", "5", "-records", "2000"},
		&live, &live); code != 0 {
		t.Fatalf("live exit %d: %s", code, live.String())
	}
	// Identical stats line for line, apart from the workload label.
	trim := func(s string) string { return s[strings.Index(s, "\n"):] }
	if trim(fromFile.String()) != trim(live.String()) {
		t.Fatalf("tracefile replay drifted from live run:\n%s\nvs\n%s", fromFile.String(), live.String())
	}
}
