// Command fragtool demonstrates the physical-memory fragmenter and the
// unusable free space index (Sec. VII-B): it builds a buddy-managed
// physical memory, drives it to a target fragmentation level, and
// reports the free-block histogram and Fu(j) before and after.
//
// Usage:
//
//	fragtool -mib 256 -target 0.95 -reserve-mib 64
package main

import (
	"flag"
	"fmt"
	"os"

	"sipt/internal/memaddr"
	"sipt/internal/vm"
)

func printState(label string, b *vm.Buddy) {
	fmt.Printf("%s: %d/%d frames free\n", label, b.FreeFrames(), b.Frames())
	counts := b.FreeBlockCounts()
	for order, n := range counts {
		if n == 0 {
			continue
		}
		fmt.Printf("  order %2d (%7d KiB blocks): %d\n", order, (4<<order)*1, n)
	}
	for _, j := range []int{vm.HugeOrder, vm.MaxOrder} {
		fmt.Printf("  Fu(order %d) = %.4f\n", j, b.UnusableFreeIndex(j))
	}
}

func main() {
	mib := flag.Uint64("mib", 256, "physical memory size in MiB")
	target := flag.Float64("target", 0.95, "target unusable free space index at huge-page order")
	reserve := flag.Uint64("reserve-mib", 64, "memory to keep free for workloads, MiB")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	frames := *mib << 20 / memaddr.PageBytes
	reserveFrames := *reserve << 20 / memaddr.PageBytes
	if reserveFrames >= frames {
		fmt.Fprintln(os.Stderr, "fragtool: reserve must be below total memory")
		os.Exit(2)
	}

	b := vm.NewBuddy(frames)
	printState("before", b)

	f := vm.NewFragmenter(b, *seed)
	fu := f.FragmentTo(vm.HugeOrder, *target, reserveFrames)
	fmt.Printf("\nfragmenter holds %d frames\n\n", f.Held())
	printState("after", b)

	if fu <= *target {
		fmt.Fprintf(os.Stderr, "fragtool: only reached Fu = %.4f (target %.4f)\n", fu, *target)
		os.Exit(1)
	}

	// Show the consequence: huge allocations fail, small ones succeed.
	if _, ok := b.AllocHuge(); ok {
		fmt.Println("\nnote: a 2 MiB block was still available")
	} else {
		fmt.Println("\n2 MiB allocation: FAILS (as intended)")
	}
	if _, ok := b.Alloc(); ok {
		fmt.Println("4 KiB allocation: succeeds")
	}
}
