// Package sipt is a from-scratch Go reproduction of "SIPT:
// Speculatively Indexed, Physically Tagged Caches" (Zheng, Zhu, Erez —
// HPCA 2018): a trace-driven simulation stack (OS memory management,
// synthetic SPEC-like workloads, cores, cache hierarchy, TLB, DRAM,
// energy model) around the paper's contribution, a speculatively
// indexed physically tagged L1 data cache with perceptron bypass
// prediction and an index delta buffer.
//
// The library lives under internal/; the entry points are the
// executables in cmd/ (siptsim, siptbench, tracegen, fragtool), the
// runnable examples under examples/, and the per-figure benchmarks in
// bench_test.go. See README.md, DESIGN.md and EXPERIMENTS.md.
package sipt
