#!/bin/sh
# Run the fixed benchmark subset and fail if throughput regressed more
# than 10% against the committed reference (bench/BENCH_1.json).
#
# Usage: scripts/bench.sh [reference.json]
#
# The fresh result is written to bench/BENCH_current.json (untracked);
# promote it to bench/BENCH_1.json when landing an intentional
# performance change.
set -eu
cd "$(dirname "$0")/.."

ref=${1:-bench/BENCH_1.json}
out=bench/BENCH_current.json

go run ./cmd/siptbench -bench -benchout "$out"
go run ./cmd/benchcmp "$ref" "$out"
