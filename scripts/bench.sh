#!/bin/sh
# Run the fixed benchmark subset and fail if throughput regressed more
# than 20% against the committed reference (bench/BENCH_9.json). The
# reference is a best-of-runs measurement and shared runners drift
# up to ~20% run to run, so the smoke threshold is wider than
# benchcmp's 10% default; the deterministic allocs/record gate stays
# at 10% via the separate -alloc-threshold flag (widening -threshold
# alone used to widen it too — that was a bug, not a feature).
#
# Usage: scripts/bench.sh [reference.json]
#
# The fresh result is written to bench/BENCH_current.json (untracked);
# promote it to bench/BENCH_9.json when landing an intentional
# performance change.
set -eu
cd "$(dirname "$0")/.."

ref=${1:-bench/BENCH_9.json}
out=bench/BENCH_current.json

go run ./cmd/siptbench -bench -benchout "$out"
go run ./cmd/benchcmp -threshold 20 -alloc-threshold 10 "$ref" "$out"
