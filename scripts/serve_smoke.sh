#!/bin/sh
# Service smoke test: boot siptd on an ephemeral port, drive one run
# and one sweep through the HTTP API with the quickstart client, then
# SIGTERM the daemon and require a clean drain (exit 0). CI runs this
# via `make serve-smoke`; scripts/verify.sh includes it too.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
daemon="$tmpdir/siptd"
outlog="$tmpdir/siptd.log"

cleanup() {
    # Belt and braces: kill a daemon that outlived the test.
    if [ -n "${pid:-}" ] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

echo '== serve-smoke: build siptd'
go build -o "$daemon" ./cmd/siptd

echo '== serve-smoke: start daemon on an ephemeral port'
"$daemon" -addr 127.0.0.1:0 -records 20000 >"$outlog" &
pid=$!

# Parse "siptd: listening on http://HOST:PORT" from the startup log.
addr=''
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|^siptd: listening on http://||p' "$outlog" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo 'serve-smoke: daemon died before listening' >&2
        cat "$outlog" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo 'serve-smoke: no listen line within 10s' >&2
    cat "$outlog" >&2
    exit 1
fi
echo "== serve-smoke: daemon up at $addr"

echo '== serve-smoke: submit run + sweep via examples/service'
go run ./examples/service -addr "$addr" -records 20000

echo '== serve-smoke: SIGTERM and wait for graceful drain'
kill -TERM "$pid"
if ! wait "$pid"; then
    echo 'serve-smoke: daemon exited non-zero on SIGTERM' >&2
    cat "$outlog" >&2
    exit 1
fi
grep -q 'siptd: drained, exiting' "$outlog" || {
    echo 'serve-smoke: no drain completion line in log' >&2
    cat "$outlog" >&2
    exit 1
}
echo 'serve-smoke: OK'
