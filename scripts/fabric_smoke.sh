#!/bin/sh
# Fabric smoke test: boot two siptd workers and a coordinator over
# them, plus one plain single-node daemon, drive the same run + sweep
# through both front doors, and require the rendered reports to be
# byte-identical — the fabric's determinism-of-merge contract, end to
# end over real sockets. Then SIGTERM everything and require clean
# drains. CI runs this via `make fabric-smoke`; scripts/verify.sh
# includes it too.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
daemon="$tmpdir/siptd"

cleanup() {
    # Belt and braces: kill daemons that outlived the test.
    for p in "${w1pid:-}" "${w2pid:-}" "${coordpid:-}" "${solopid:-}"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -KILL "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

# wait_addr LOGFILE PID: parse "siptd: listening on http://HOST:PORT"
# from a daemon's startup log, echoing the address.
wait_addr() {
    log=$1
    pid=$2
    i=0
    while [ $i -lt 100 ]; do
        a=$(sed -n 's|^siptd: listening on http://||p' "$log" | head -n 1)
        if [ -n "$a" ]; then
            echo "$a"
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "fabric-smoke: daemon died before listening ($log)" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    echo "fabric-smoke: no listen line within 10s ($log)" >&2
    cat "$log" >&2
    return 1
}

echo '== fabric-smoke: build siptd'
go build -o "$daemon" ./cmd/siptd

echo '== fabric-smoke: start two workers'
"$daemon" -addr 127.0.0.1:0 -records 20000 >"$tmpdir/w1.log" &
w1pid=$!
"$daemon" -addr 127.0.0.1:0 -records 20000 >"$tmpdir/w2.log" &
w2pid=$!
w1addr=$(wait_addr "$tmpdir/w1.log" "$w1pid")
w2addr=$(wait_addr "$tmpdir/w2.log" "$w2pid")
echo "== fabric-smoke: workers up at $w1addr, $w2addr"

echo '== fabric-smoke: start coordinator and single-node reference'
"$daemon" -addr 127.0.0.1:0 -records 20000 -coordinator "$w1addr,$w2addr" >"$tmpdir/coord.log" &
coordpid=$!
"$daemon" -addr 127.0.0.1:0 -records 20000 >"$tmpdir/solo.log" &
solopid=$!
coordaddr=$(wait_addr "$tmpdir/coord.log" "$coordpid")
soloaddr=$(wait_addr "$tmpdir/solo.log" "$solopid")
grep -q 'siptd: coordinator over 2 workers' "$tmpdir/coord.log" || {
    echo 'fabric-smoke: coordinator startup line missing' >&2
    cat "$tmpdir/coord.log" >&2
    exit 1
}
echo "== fabric-smoke: coordinator at $coordaddr, single node at $soloaddr"

# Drive the identical run + fig6 sweep through both daemons. Job
# latencies differ run to run, so the timing lines are normalised
# before the diff; every other byte — job IDs included — must match.
echo '== fabric-smoke: same workload through both front doors'
go run ./examples/service -addr "$coordaddr" -records 20000 -experiment fig6 |
    sed 's/finished in [0-9]* ms$/finished/' >"$tmpdir/coord.out"
go run ./examples/service -addr "$soloaddr" -records 20000 -experiment fig6 |
    sed 's/finished in [0-9]* ms$/finished/' >"$tmpdir/solo.out"

echo '== fabric-smoke: coordinator report must equal single-node report'
if ! diff -u "$tmpdir/solo.out" "$tmpdir/coord.out"; then
    echo 'fabric-smoke: coordinator output differs from single node' >&2
    exit 1
fi

echo '== fabric-smoke: SIGTERM all daemons and wait for graceful drains'
kill -TERM "$coordpid" "$solopid" "$w1pid" "$w2pid"
for p in "$coordpid" "$solopid" "$w1pid" "$w2pid"; do
    if ! wait "$p"; then
        echo 'fabric-smoke: a daemon exited non-zero on SIGTERM' >&2
        exit 1
    fi
done
for log in coord solo w1 w2; do
    grep -q 'siptd: drained, exiting' "$tmpdir/$log.log" || {
        echo "fabric-smoke: no drain completion line in $log.log" >&2
        cat "$tmpdir/$log.log" >&2
        exit 1
    }
done
echo 'fabric-smoke: OK'
