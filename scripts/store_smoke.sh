#!/bin/sh
# Persistent-store smoke test: boot siptd with -store-dir, ingest a
# tracegen-emitted trace file, run a sweep cold (simulates and persists
# the results), then kill the daemon and restart it over the same
# directory. The warm sweep must come back byte-identical from disk
# without a single simulation, and the ingested trace must still be
# listed. CI runs this via `make store-smoke`; scripts/verify.sh
# includes it too. Needs curl and jq.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
daemon="$tmpdir/siptd"
storedir="$tmpdir/store"
outlog="$tmpdir/siptd.log"

cleanup() {
    # Belt and braces: kill a daemon that outlived the test.
    if [ -n "${pid:-}" ] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

echo '== store-smoke: build siptd + tracegen'
go build -o "$daemon" ./cmd/siptd
go build -o "$tmpdir/tracegen" ./cmd/tracegen

start_daemon() {
    : >"$outlog"
    "$daemon" -addr 127.0.0.1:0 -records 8000 -store-dir "$storedir" >"$outlog" &
    pid=$!
    addr=''
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's|^siptd: listening on http://||p' "$outlog" | head -n 1)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo 'store-smoke: daemon died before listening' >&2
            cat "$outlog" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo 'store-smoke: no listen line within 10s' >&2
        cat "$outlog" >&2
        exit 1
    fi
}

stop_daemon() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo 'store-smoke: daemon exited non-zero on SIGTERM' >&2
        cat "$outlog" >&2
        exit 1
    fi
    grep -q 'siptd: drained, exiting' "$outlog" || {
        echo 'store-smoke: no drain completion line in log' >&2
        cat "$outlog" >&2
        exit 1
    }
}

# sweep submits the reference sweep, polls the job to completion, and
# prints the job view with the (timing-dependent) elapsed_ms stripped,
# so cold and warm responses are diffable byte for byte.
sweep() {
    id=$(curl -fsS -X POST "http://$addr/v1/sweep" \
        -d '{"experiment":"fig6","apps":["libquantum"],"records":8000}' | jq -r .id)
    i=0
    while [ $i -lt 600 ]; do
        view=$(curl -fsS "http://$addr/v1/jobs/$id")
        case $(printf '%s' "$view" | jq -r .status) in
        done)
            printf '%s' "$view" | jq 'del(.elapsed_ms)'
            return 0
            ;;
        failed | canceled)
            echo "store-smoke: sweep failed: $view" >&2
            exit 1
            ;;
        esac
        sleep 0.1
        i=$((i + 1))
    done
    echo 'store-smoke: sweep did not finish within 60s' >&2
    exit 1
}

# metric prints one counter/gauge value from the Prometheus text dump.
metric() {
    curl -fsS "http://$addr/metrics" | awk -v n="$1" '$1 == n { print $2 }'
}

echo '== store-smoke: start siptd with a persistent store'
start_daemon
echo "== store-smoke: daemon up at $addr (store: $storedir)"

echo '== store-smoke: ingest a trace file (201 new, 200 duplicate)'
"$tmpdir/tracegen" -app libquantum -records 4000 -seed 7 -o "$tmpdir/lq.sipt"
code=$(curl -sS -o "$tmpdir/upload.json" -w '%{http_code}' \
    --data-binary @"$tmpdir/lq.sipt" "http://$addr/v1/traces")
if [ "$code" != 201 ]; then
    echo "store-smoke: first upload returned $code, want 201" >&2
    cat "$tmpdir/upload.json" >&2
    exit 1
fi
code=$(curl -sS -o /dev/null -w '%{http_code}' \
    --data-binary @"$tmpdir/lq.sipt" "http://$addr/v1/traces")
if [ "$code" != 200 ]; then
    echo "store-smoke: duplicate upload returned $code, want 200" >&2
    exit 1
fi
digest=$(jq -r .digest "$tmpdir/upload.json")

echo '== store-smoke: cold sweep (simulates, persists results)'
sweep >"$tmpdir/cold.json"
puts=$(metric store_puts_total)
if [ "${puts:-0}" -le 0 ]; then
    echo "store-smoke: store_puts_total=${puts:-?} after cold sweep, want >0" >&2
    exit 1
fi

echo '== store-smoke: SIGTERM, then restart over the same store'
stop_daemon
start_daemon
echo "== store-smoke: daemon back up at $addr"

echo '== store-smoke: warm sweep must be served from disk'
sweep >"$tmpdir/warm.json"
if ! diff -u "$tmpdir/cold.json" "$tmpdir/warm.json"; then
    echo 'store-smoke: warm response differs from cold response' >&2
    exit 1
fi
sims=$(metric serve_simulations_total)
hits=$(metric store_hits_total)
if [ "${sims:-1}" != 0 ]; then
    echo "store-smoke: serve_simulations_total=${sims:-?} after warm sweep, want 0" >&2
    exit 1
fi
if [ "${hits:-0}" -le 0 ]; then
    echo "store-smoke: store_hits_total=${hits:-?} after warm sweep, want >0" >&2
    exit 1
fi

echo '== store-smoke: ingested trace survived the restart'
curl -fsS "http://$addr/v1/traces" |
    jq -e --arg d "$digest" '.traces | map(.digest) | index($d) != null' >/dev/null || {
    echo "store-smoke: trace $digest missing from listing after restart" >&2
    exit 1
}

stop_daemon
echo 'store-smoke: OK'
