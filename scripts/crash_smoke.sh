#!/bin/sh
# Crash smoke test: boot siptd with a journal (-journal-dir) and a
# persistent store, SIGKILL it mid-sweep, and restart it over the same
# directories. The revived daemon must replay the journal, resume the
# interrupted sweep from its lane checkpoints (re-running only the
# missing lanes), and serve a report byte-identical to an uninterrupted
# reference run; job IDs must stay dense across the crash. CI runs this
# via `make crash-smoke`; scripts/verify.sh includes it too. Needs curl
# and jq. See DESIGN.md §15 for the durability model under test.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
daemon="$tmpdir/siptd"
outlog="$tmpdir/siptd.log"

# fig6 over two apps is 3 configs x 2 apps = 6 lanes; the record count
# keeps a single worker busy long enough to land a SIGKILL between the
# first checkpoint and the last lane.
sweep_body='{"experiment":"fig6","apps":["mcf","libquantum"],"records":500000}'
total_lanes=6

cleanup() {
    # Belt and braces: kill a daemon that outlived the test.
    if [ -n "${pid:-}" ] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmpdir"
}
trap cleanup EXIT INT TERM

echo '== crash-smoke: build siptd'
go build -o "$daemon" ./cmd/siptd

# start_daemon STOREDIR JNLDIR boots siptd over the given directories
# and parses the ephemeral address from its startup log.
start_daemon() {
    : >"$outlog"
    "$daemon" -addr 127.0.0.1:0 -workers 1 -store-dir "$1" -journal-dir "$2" >"$outlog" &
    pid=$!
    addr=''
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's|^siptd: listening on http://||p' "$outlog" | head -n 1)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo 'crash-smoke: daemon died before listening' >&2
            cat "$outlog" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo 'crash-smoke: no listen line within 10s' >&2
        cat "$outlog" >&2
        exit 1
    fi
}

stop_daemon() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo 'crash-smoke: daemon exited non-zero on SIGTERM' >&2
        cat "$outlog" >&2
        exit 1
    fi
}

# wait_done ID polls a job to completion and prints its view with the
# (timing-dependent) elapsed_ms stripped, so runs are diffable.
wait_done() {
    i=0
    while [ $i -lt 1200 ]; do
        view=$(curl -fsS "http://$addr/v1/jobs/$1")
        case $(printf '%s' "$view" | jq -r .status) in
        done)
            printf '%s' "$view" | jq 'del(.elapsed_ms)'
            return 0
            ;;
        failed | canceled)
            echo "crash-smoke: job $1 failed: $view" >&2
            exit 1
            ;;
        esac
        sleep 0.1
        i=$((i + 1))
    done
    echo "crash-smoke: job $1 did not finish within 120s" >&2
    exit 1
}

# metric prints one counter/gauge value from the Prometheus text dump.
metric() {
    curl -fsS "http://$addr/metrics" | awk -v n="$1" '$1 == n { print $2 }'
}

echo '== crash-smoke: reference run (no crash)'
start_daemon "$tmpdir/ref-store" "$tmpdir/ref-jnl"
id=$(curl -fsS -X POST "http://$addr/v1/sweep" -d "$sweep_body" | jq -r .id)
wait_done "$id" >"$tmpdir/ref.json"
stop_daemon

echo '== crash-smoke: victim run, SIGKILL mid-sweep'
start_daemon "$tmpdir/store" "$tmpdir/jnl"
id=$(curl -fsS -X POST "http://$addr/v1/sweep" -d "$sweep_body" | jq -r .id)
if [ "$id" != job-1 ]; then
    echo "crash-smoke: first admission got id $id, want job-1" >&2
    exit 1
fi
# Wait for at least one lane checkpoint while the sweep is still
# running, then pull the plug. store_puts_total counts lane blobs plus
# at most one materialised trace per app (2 here), so >= 3 puts
# guarantees at least one lane reached the store.
killed=''
i=0
while [ $i -lt 1200 ]; do
    puts=$(metric store_puts_total)
    status=$(curl -fsS "http://$addr/v1/jobs/$id" | jq -r .status)
    if [ "$status" = done ]; then
        echo 'crash-smoke: sweep finished before the kill window; raise records in sweep_body' >&2
        exit 1
    fi
    if [ "${puts:-0}" -ge 3 ]; then
        kill -KILL "$pid"
        wait "$pid" 2>/dev/null || true
        killed=yes
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
if [ -z "$killed" ]; then
    echo 'crash-smoke: no lane checkpoint observed within 60s' >&2
    cat "$outlog" >&2
    exit 1
fi
echo "== crash-smoke: killed -9 after $puts store puts (>= 1 lane checkpointed)"

echo '== crash-smoke: restart over the same journal and store'
start_daemon "$tmpdir/store" "$tmpdir/jnl"
wait_done job-1 >"$tmpdir/resumed.json"

echo '== crash-smoke: resumed report must be byte-identical to the reference'
if ! diff -u "$tmpdir/ref.json" "$tmpdir/resumed.json"; then
    echo 'crash-smoke: resumed response differs from the reference' >&2
    exit 1
fi

echo '== crash-smoke: replay accounting'
replayed=$(metric serve_journal_replayed_total)
resumed=$(metric serve_sweeps_resumed_total)
sims=$(metric serve_simulations_total)
if [ "${replayed:-0}" != 1 ]; then
    echo "crash-smoke: serve_journal_replayed_total=${replayed:-?}, want 1" >&2
    exit 1
fi
if [ "${resumed:-0}" != 1 ]; then
    echo "crash-smoke: serve_sweeps_resumed_total=${resumed:-?}, want 1" >&2
    exit 1
fi
# Checkpointed lanes must not be re-simulated: the resume simulates
# strictly fewer lanes than a from-scratch sweep (the Go chaos gate in
# cmd/siptd pins the exact per-lane accounting).
if [ "${sims:-$total_lanes}" -ge "$total_lanes" ]; then
    echo "crash-smoke: serve_simulations_total=${sims:-?} after resume, want < $total_lanes" >&2
    exit 1
fi

echo '== crash-smoke: job IDs stay dense across the crash'
id=$(curl -fsS -X POST "http://$addr/v1/run" -d '{"app":"mcf","records":2000}' | jq -r .id)
if [ "$id" != job-2 ]; then
    echo "crash-smoke: post-recovery admission got id $id, want job-2" >&2
    exit 1
fi
wait_done job-2 >/dev/null

stop_daemon
echo 'crash-smoke: OK'
