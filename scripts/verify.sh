#!/bin/sh
# Repository verification gate: build, vet, siptlint, full test suite,
# the race detector over all packages, and (when installed) govulncheck.
# CI and `make verify` both run exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...
echo '== go vet ./...'
go vet ./...
echo '== siptlint ./...'
# The lint phase has a wall-clock budget: the analyzers are meant to be
# cheap enough to run on every verify, and a blown budget means an
# analyzer (or the loader) regressed. The cold run below bypasses the
# result cache so the budget measures real analysis time.
lint_start=$(date +%s)
go run ./cmd/siptlint -cache=false -timing ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "== siptlint took ${lint_elapsed}s (budget 90s)"
if [ "$lint_elapsed" -gt 90 ]; then
    echo "verify: siptlint exceeded its 90s budget (${lint_elapsed}s)" >&2
    exit 1
fi
echo '== go test ./...'
go test ./...
echo '== go test -race ./...'
go test -race ./...
echo '== chaos suite (fault injection under race)'
go test -race -short -run 'TestChaos|TestDecideMatchesFire' ./internal/fault/
go test -race -short -run 'TestChaos' ./internal/fabric/
echo '== serve smoke (siptd end to end)'
scripts/serve_smoke.sh
echo '== fabric smoke (coordinator vs single node)'
scripts/fabric_smoke.sh
echo '== store smoke (persistence across restart)'
scripts/store_smoke.sh
echo '== crash smoke (kill -9 recovery from the journal)'
scripts/crash_smoke.sh
if command -v govulncheck >/dev/null 2>&1; then
    echo '== govulncheck ./...'
    govulncheck ./...
else
    echo '== govulncheck: not installed, skipping'
fi
echo 'verify: OK'
