#!/bin/sh
# Repository verification gate: build, vet, siptlint, full test suite,
# the race detector over all packages, and (when installed) govulncheck.
# CI and `make verify` both run exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...
echo '== go vet ./...'
go vet ./...
echo '== siptlint ./...'
go run ./cmd/siptlint ./...
echo '== go test ./...'
go test ./...
echo '== go test -race ./...'
go test -race ./...
echo '== chaos suite (fault injection under race)'
go test -race -short -run 'TestChaos|TestDecideMatchesFire' ./internal/fault/
go test -race -short -run 'TestChaos' ./internal/fabric/
echo '== serve smoke (siptd end to end)'
scripts/serve_smoke.sh
echo '== fabric smoke (coordinator vs single node)'
scripts/fabric_smoke.sh
if command -v govulncheck >/dev/null 2>&1; then
    echo '== govulncheck ./...'
    govulncheck ./...
else
    echo '== govulncheck: not installed, skipping'
fi
echo 'verify: OK'
