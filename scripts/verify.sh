#!/bin/sh
# Repository verification gate: build, vet, full test suite, and the
# race detector over the packages that run simulations concurrently.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...
echo '== go vet ./...'
go vet ./...
echo '== go test ./...'
go test ./...
echo '== go test -race ./internal/exp ./internal/sim'
go test -race ./internal/exp ./internal/sim
echo 'verify: OK'
