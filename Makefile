# Development entry points. CI runs `make verify` and `make bench`;
# everything here is plain Go tooling with no external dependencies.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race lint vet vuln verify bench fuzz serve-smoke fabric-smoke store-smoke crash-smoke chaos

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# siptlint: the repo's own determinism/accounting/concurrency/contract
# analyzers (see internal/lint). Non-zero exit on any finding; -timing
# prints per-analyzer wall time so slow analyzers are visible.
lint:
	$(GO) run ./cmd/siptlint -timing ./...

vet:
	$(GO) vet ./...

# govulncheck is optional tooling: run it when installed, skip quietly
# in hermetic environments that cannot fetch it.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo 'vuln: govulncheck not installed, skipping'; \
	fi

verify:
	scripts/verify.sh

# Benchmark smoke: run the fixed subset and compare against the
# committed reference; fails on a >10% throughput regression.
bench:
	scripts/bench.sh

# Service smoke: boot siptd on an ephemeral port, drive a run and a
# sweep through the HTTP API, then SIGTERM and require a clean drain.
serve-smoke:
	scripts/serve_smoke.sh

# Fabric smoke: boot two workers plus a coordinator and a single-node
# daemon, drive the same workload through both, and require the
# reports to be byte-identical (plus clean drains all round).
fabric-smoke:
	scripts/fabric_smoke.sh

# Store smoke: boot siptd with a persistent store, ingest a trace,
# sweep, kill and restart over the same directory; the warm sweep must
# come back byte-identical from disk with zero simulations.
store-smoke:
	scripts/store_smoke.sh

# Crash smoke: boot siptd with a job journal, SIGKILL it mid-sweep,
# restart over the same directories; the revived daemon must resume the
# sweep from its lane checkpoints and serve a byte-identical report
# with dense job IDs.
crash-smoke:
	scripts/crash_smoke.sh

# Chaos: the fault-injection acceptance suite (internal/fault) under the
# race detector — seeded panics, evictions, and transient failures
# against the full serving stack. Short mode keeps it CI-sized.
chaos:
	$(GO) test -race -short -run 'TestChaos|TestDecideMatchesFire' ./internal/fault/
	$(GO) test -race -short -run 'TestPanicIsolation|TestInjectedWorkerPanic' ./internal/sched/
	$(GO) test -race -short -run 'TestChaos' ./internal/fabric/

# Native Go fuzzing over the pure bit-math and allocator invariants,
# plus the lint loader/dataflow stack on generated Go sources.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzIndexDelta -fuzztime=$(FUZZTIME) ./internal/memaddr/
	$(GO) test -run='^$$' -fuzz=FuzzUnchangedBits -fuzztime=$(FUZZTIME) ./internal/memaddr/
	$(GO) test -run='^$$' -fuzz=FuzzAlignAndLog2 -fuzztime=$(FUZZTIME) ./internal/memaddr/
	$(GO) test -run='^$$' -fuzz=FuzzBuddy -fuzztime=$(FUZZTIME) ./internal/vm/
	$(GO) test -run='^$$' -fuzz=FuzzLoader -fuzztime=$(FUZZTIME) ./internal/lint/
	$(GO) test -run='^$$' -fuzz=FuzzReadBuffer -fuzztime=$(FUZZTIME) ./internal/tracefile/
	$(GO) test -run='^$$' -fuzz=FuzzCanonicalRoundTrip -fuzztime=$(FUZZTIME) ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/journal/
