// Predictor lab: exercises the two SIPT predictors in isolation,
// outside any cache or core, the way Secs. V and VI introduce them.
//
// Part 1 trains the 64-entry perceptron bypass predictor (Fig. 8) on a
// synthetic stream of PCs with different index-bit-change behaviours
// and reports the four-way outcome breakdown (Fig. 9's categories).
//
// Part 2 feeds the index delta buffer (Fig. 11) a walk over regions
// mapped with different VA->PA deltas — including a buddy-allocated
// address space built with the real vm substrate — and reports its hit
// rate.
//
// Run with:
//
//	go run ./examples/predictor_lab
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sipt/internal/memaddr"
	"sipt/internal/predictor"
	"sipt/internal/vm"
)

func main() {
	perceptronPart()
	idbPart()
}

func perceptronPart() {
	fmt.Println("== Part 1: perceptron bypass predictor ==")
	p := predictor.NewPerceptron()
	rng := rand.New(rand.NewSource(7))

	// 24 static memory instructions: a third always keep their index
	// bits, a third always change them, a third flip with 90% bias.
	type pcKind struct {
		pc   uint64
		bias float64 // probability the bits are unchanged
	}
	var pcs []pcKind
	for i := 0; i < 24; i++ {
		k := pcKind{pc: 0x400000 + uint64(i)*4}
		switch i % 3 {
		case 0:
			k.bias = 1.0
		case 1:
			k.bias = 0.0
		default:
			k.bias = 0.9
		}
		pcs = append(pcs, k)
	}
	for i := 0; i < 200_000; i++ {
		k := pcs[rng.Intn(len(pcs))]
		unchanged := rng.Float64() < k.bias
		p.Train(k.pc, p.Predict(k.pc), unchanged)
	}
	st := p.Stats()
	n := float64(st.Predictions)
	fmt.Printf("predictions       %d\n", st.Predictions)
	fmt.Printf("correct speculate %.1f%%\n", float64(st.CorrectSpeculate)/n*100)
	fmt.Printf("correct bypass    %.1f%%\n", float64(st.CorrectBypass)/n*100)
	fmt.Printf("opportunity loss  %.1f%%\n", float64(st.OpportunityLoss)/n*100)
	fmt.Printf("extra access      %.1f%%\n", float64(st.ExtraAccess)/n*100)
	fmt.Printf("accuracy          %.1f%%  (paper: >90%% on every app)\n", st.Accuracy()*100)
	fmt.Printf("storage           %d bytes (paper: 624 B)\n\n", p.StorageBits()/8)
}

func idbPart() {
	fmt.Println("== Part 2: index delta buffer over a buddy-allocated space ==")
	// Build a real address space: a fragmented-ish allocator and many
	// small chunks give each region its own VA->PA delta.
	b := vm.NewBuddy(1 << 14)
	as := vm.NewAddressSpace(b, false)
	var bases []memaddr.VAddr
	for i := 0; i < 64; i++ {
		base := as.Mmap(8 * memaddr.PageBytes)
		if err := as.Touch(base, 8*memaddr.PageBytes); err != nil {
			log.Fatal(err)
		}
		bases = append(bases, base)
	}

	const bits = 3
	idb := predictor.NewIDB(bits, false, 1)
	rng := rand.New(rand.NewSource(9))
	pc := uint64(0x400100)

	var hits, lookups int
	// Walk chunk by chunk, several accesses per page, like a loop
	// sweeping per-object arrays.
	for round := 0; round < 50; round++ {
		base := bases[rng.Intn(len(bases))]
		for off := uint64(0); off < 8*memaddr.PageBytes; off += 512 {
			va := base + memaddr.VAddr(off)
			pa, _, ok := as.Lookup(va)
			if !ok {
				log.Fatalf("unmapped VA %#x", uint64(va))
			}
			trueDelta := memaddr.IndexDelta(va, pa, bits)
			delta, ok := idb.Predict(pc, uint64(va.PageNum()))
			correct := ok && delta == trueDelta
			if ok {
				lookups++
				if correct {
					hits++
				}
			}
			idb.Train(pc, uint64(va.PageNum()), trueDelta, ok, correct)
		}
	}
	fmt.Printf("chunks            %d (each with its own VA->PA delta)\n", len(bases))
	fmt.Printf("IDB lookups       %d\n", lookups)
	fmt.Printf("IDB hit rate      %.1f%%\n", float64(hits)/float64(lookups)*100)
	fmt.Println("Within a chunk the delta is constant (buddy contiguity), so only")
	fmt.Println("the first access after a chunk switch mispredicts — the paper's")
	fmt.Println("\"only the first access to a page will mispredict\" observation.")
}
