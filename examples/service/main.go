// Service quickstart: drive a running siptd daemon through its HTTP
// API with nothing but the standard library.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/siptd -addr 127.0.0.1:8080 &
//	go run ./examples/service -addr 127.0.0.1:8080
//
// The client submits one interactive run and one bulk sweep, polls
// both jobs to completion, and prints the result tables. It exits
// non-zero if either job fails — scripts/serve_smoke.sh relies on
// that to gate CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"sipt/internal/report"
)

// jobView mirrors the serve.JobView JSON contract.
type jobView struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Status    string          `json:"status"`
	Error     string          `json:"error,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`
	Tables    []*report.Table `json:"tables,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "siptd address (host:port)")
	records := flag.Uint64("records", 20_000, "trace length per simulation")
	experiment := flag.String("experiment", "fig5", "experiment ID for the sweep")
	flag.Parse()
	base := "http://" + *addr

	// 1. An interactive run: the headline SIPT configuration.
	runID := submit(base, "/v1/run", map[string]any{
		"app":     "mcf",
		"l1":      "32K2w",
		"mode":    "combined",
		"records": *records,
	})
	fmt.Printf("submitted run   %s\n", runID)

	// 2. A bulk sweep (Fig. 5 by default) restricted to two apps.
	sweepID := submit(base, "/v1/sweep", map[string]any{
		"experiment": *experiment,
		"apps":       []string{"mcf", "gcc"},
		"records":    *records,
	})
	fmt.Printf("submitted sweep %s\n", sweepID)

	for _, id := range []string{runID, sweepID} {
		v := wait(base, id, 5*time.Minute)
		fmt.Printf("\n%s %s finished in %.0f ms\n\n", v.Kind, v.ID, v.ElapsedMS)
		for _, t := range v.Tables {
			if err := t.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
}

// submit POSTs a JSON body and returns the accepted job's ID.
func submit(base, path string, body map[string]any) string {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		log.Fatalf("%s: HTTP %d: %s", path, resp.StatusCode, e.Error)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		log.Fatal(err)
	}
	return sub.ID
}

// wait polls a job until it is terminal, failing the program on any
// outcome other than done.
func wait(base, id string, timeout time.Duration) jobView {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		switch v.Status {
		case "done":
			return v
		case "failed", "canceled":
			log.Fatalf("job %s ended %s: %s", id, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
