// Fragmentation: reproduces the paper's Sec. VII-B sensitivity story
// for one workload. It runs the same application under the four
// operating conditions of Fig. 18 — a normal machine, artificially
// fragmented physical memory (unusable free space index > 0.95),
// transparent huge pages disabled, and zero >4KiB mapping contiguity —
// and shows how SIPT's prediction accuracy and speedup degrade only
// mildly.
//
// Run with:
//
//	go run ./examples/fragmentation
package main

import (
	"context"
	"fmt"
	"log"

	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/sim"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func main() {
	const app = "libquantum" // huge-page-dominated: fragmentation bites hardest
	const records = 150_000
	const seed = 1

	prof, err := workload.Lookup(app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, SIPT 32K/2-way/2-cycle with bypass+IDB, OOO core\n\n", app)
	fmt.Printf("%-12s  %8s  %9s  %8s  %10s\n",
		"condition", "speedup", "fast-frac", "idb-hit", "energy-rel")

	for _, sc := range vm.Scenarios() {
		base, err := sim.RunApp(context.Background(), prof, sim.Baseline(cpu.OOO()), sc, seed, records)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined)
		cfg.NoContig = sc == vm.ScenarioNoContig
		st, err := sim.RunApp(context.Background(), prof, cfg, sc, seed, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %+7.1f%%  %8.1f%%  %7.1f%%  %10.3f\n",
			sc,
			(st.IPC()/base.IPC()-1)*100,
			st.L1.FastFraction()*100,
			st.IDB.HitRate()*100,
			st.Energy.Total()/base.Energy.Total())
	}

	fmt.Println("\nThe fragmented condition suppresses huge pages and scatters the")
	fmt.Println("buddy allocator's blocks; THP-off removes 2 MiB mappings entirely;")
	fmt.Println("no-contig additionally denies the IDB any cross-page delta reuse.")
	fmt.Println("As in the paper, accuracy and speedup degrade, but not collapse.")
}
