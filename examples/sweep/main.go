// Sweep: the design-space exploration of the paper's Sec. III, live.
// For one workload it sweeps every L1 geometry of Tab. I on the OOO
// core — as an *ideal* cache, as the VIPT/PIPT fallback, and as a real
// SIPT cache with the combined predictor — and prints the resulting
// IPC and cache-hierarchy energy grid. The gap between the pipt and
// sipt columns is the paper's contribution, measured.
//
// Run with:
//
//	go run ./examples/sweep [-app mcf]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sipt/internal/cache"
	"sipt/internal/cacti"
	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/memaddr"
	"sipt/internal/sim"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func main() {
	app := flag.String("app", "gromacs", "workload to sweep")
	records := flag.Uint64("records", 120_000, "memory accesses per run")
	flag.Parse()

	prof, err := workload.Lookup(*app)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sim.RunApp(context.Background(), prof, sim.Baseline(cpu.OOO()), vm.ScenarioNormal, 1, *records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s; baseline 32K/8-way VIPT: IPC %.3f\n", *app, base.IPC())
	fmt.Printf("every value below is relative to that baseline\n\n")
	fmt.Printf("%-10s %5s %5s  %10s %10s %10s  %12s\n",
		"geometry", "spec", "lat", "ipc-ideal", "ipc-pipt", "ipc-sipt", "energy-sipt")

	geoms := [][2]int{{16, 4}, {32, 2}, {32, 4}, {64, 4}, {128, 4}}
	for _, g := range geoms {
		cc := cache.Config{SizeBytes: uint64(g[0]) << 10, Ways: g[1], LineBytes: 64}
		lat := cacti.Params(g[0], g[1], sim.FreqGHz).LatencyCycles
		ideal, err := sim.RunApp(context.Background(), prof, sim.SIPT(cpu.OOO(), g[0], g[1], core.ModeIdeal),
			vm.ScenarioNormal, 1, *records)
		if err != nil {
			log.Fatal(err)
		}
		pipt, err := sim.RunApp(context.Background(), prof, sim.SIPT(cpu.OOO(), g[0], g[1], core.ModeVIPT),
			vm.ScenarioNormal, 1, *records)
		if err != nil {
			log.Fatal(err)
		}
		sipt, err := sim.RunApp(context.Background(), prof, sim.SIPT(cpu.OOO(), g[0], g[1], core.ModeCombined),
			vm.ScenarioNormal, 1, *records)
		if err != nil {
			log.Fatal(err)
		}
		specNote := fmt.Sprintf("%d", cc.SpecBits())
		if cc.SpecBits() == 0 {
			specNote = "-" // VIPT-feasible: nothing to speculate
		}
		fmt.Printf("%3dK %d-way %5s %4dc  %10.3f %10.3f %10.3f  %12.3f\n",
			g[0], g[1], specNote, lat,
			ideal.IPC()/base.IPC(), pipt.IPC()/base.IPC(), sipt.IPC()/base.IPC(),
			sipt.Energy.Total()/base.Energy.Total())
	}

	fmt.Println("\nSpeculative bits beyond the", memaddr.PageBytes, "B page offset make the")
	fmt.Println("fast geometries real: the sipt column tracks ideal, not pipt.")
}
