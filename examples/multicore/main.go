// Multicore: a quad-core multiprogrammed run in the style of the
// paper's Fig. 15. Four applications (one Tab. III mix) share a 4x LLC
// and DRAM while each core keeps its private SIPT L1, L2, and TLB; the
// example prints per-core IPC under the baseline and under SIPT with
// the combined predictor, plus the sum-of-IPC throughput metric.
//
// Run with:
//
//	go run ./examples/multicore
package main

import (
	"context"
	"fmt"
	"log"

	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/sim"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func main() {
	const records = 60_000
	const seed = 1
	mix := workload.Mixes()[5] // h264ref, cactusADM, calculix, tonto

	baseCfg := sim.Baseline(cpu.OOO())
	baseCfg.Cores = 4
	base, err := sim.RunMix(context.Background(), mix, baseCfg, vm.ScenarioNormal, seed, records)
	if err != nil {
		log.Fatal(err)
	}
	siptCfg := sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined)
	siptCfg.Cores = 4
	sipt, err := sim.RunMix(context.Background(), mix, siptCfg, vm.ScenarioNormal, seed, records)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mix %s on a quad-core OOO system (shared 8 MiB LLC)\n\n", mix.Name)
	fmt.Printf("%-12s  %12s  %12s  %9s  %10s\n", "core/app", "baseline-IPC", "SIPT-IPC", "speedup", "fast-frac")
	for i := range sipt.PerCore {
		b, s := base.PerCore[i], sipt.PerCore[i]
		fmt.Printf("%d %-10s  %12.3f  %12.3f  %+8.1f%%  %9.1f%%\n",
			i, s.App, b.IPC(), s.IPC(), (s.IPC()/b.IPC()-1)*100, s.L1.FastFraction()*100)
	}
	fmt.Printf("\nsum-of-IPC: baseline %.3f, SIPT %.3f (%+.1f%%)\n",
		base.SumIPC(), sipt.SumIPC(), (sipt.SumIPC()/base.SumIPC()-1)*100)
	fmt.Printf("cache-hierarchy energy: %.3f of baseline\n",
		sipt.Energy.Total()/base.Energy.Total())
}
