// Quickstart: the smallest end-to-end SIPT experiment.
//
// It simulates one workload on the paper's baseline L1 (32 KiB 8-way
// VIPT, 4-cycle) and on the headline SIPT configuration (32 KiB 2-way,
// 2-cycle, combined bypass+IDB prediction), then prints the speedup,
// the speculation breakdown, and the cache-hierarchy energy saving.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sipt/internal/core"
	"sipt/internal/cpu"
	"sipt/internal/sim"
	"sipt/internal/vm"
	"sipt/internal/workload"
)

func main() {
	const app = "h264ref"
	const records = 200_000
	const seed = 1

	prof, err := workload.Lookup(app)
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := sim.RunApp(context.Background(), prof, sim.Baseline(cpu.OOO()), vm.ScenarioNormal, seed, records)
	if err != nil {
		log.Fatal(err)
	}
	sipt, err := sim.RunApp(context.Background(), prof, sim.SIPT(cpu.OOO(), 32, 2, core.ModeCombined),
		vm.ScenarioNormal, seed, records)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, %d memory accesses on the OOO core\n\n", app, records)
	fmt.Printf("baseline (32K 8-way VIPT, 4-cycle):  IPC %.3f, energy %.3g J\n",
		baseline.IPC(), baseline.Energy.Total())
	fmt.Printf("SIPT     (32K 2-way,  2-cycle):      IPC %.3f, energy %.3g J\n\n",
		sipt.IPC(), sipt.Energy.Total())

	fmt.Printf("speedup:        %+.1f%%\n", (sipt.IPC()/baseline.IPC()-1)*100)
	fmt.Printf("energy:         %+.1f%%\n", (sipt.Energy.Total()/baseline.Energy.Total()-1)*100)
	fmt.Printf("fast accesses:  %.1f%% (%.1f%% via bypass predictor, %.1f%% via IDB)\n",
		sipt.L1.FastFraction()*100,
		float64(sipt.L1.FastSpec)/float64(sipt.L1.Accesses)*100,
		float64(sipt.L1.FastIDB)/float64(sipt.L1.Accesses)*100)
	fmt.Printf("extra accesses: %.2f per 1000 demand accesses\n",
		sipt.L1.ExtraAccessRate()*1000)
}
